// Unit tests for the numerics substrate: dtype traits, fp16/bf16
// conversions (bit-exact), bit-flip semantics, and the deterministic RNG.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "numerics/bitflip.h"
#include "numerics/dtype.h"
#include "numerics/half.h"
#include "numerics/rng.h"

namespace llmfi::num {
namespace {

// ---- dtype traits ----------------------------------------------------

TEST(DType, TraitsMatchTable2) {
  EXPECT_EQ(dtype_info(DType::F16).exponent_bits, 5);
  EXPECT_EQ(dtype_info(DType::F32).exponent_bits, 8);
  EXPECT_EQ(dtype_info(DType::BF16).exponent_bits, 8);
  EXPECT_EQ(dtype_info(DType::F16).total_bits, 16);
  EXPECT_EQ(dtype_info(DType::BF16).total_bits, 16);
  EXPECT_EQ(dtype_info(DType::I4).total_bits, 4);
  EXPECT_DOUBLE_EQ(dtype_info(DType::F16).max_finite, 65504.0);
}

TEST(DType, ParseRoundTrip) {
  for (auto d : {DType::F32, DType::F16, DType::BF16, DType::I8, DType::I4}) {
    EXPECT_EQ(parse_dtype(dtype_name(d)), d);
  }
  EXPECT_THROW(parse_dtype("fp8"), std::invalid_argument);
}

TEST(DType, Classification) {
  EXPECT_TRUE(is_float_dtype(DType::BF16));
  EXPECT_FALSE(is_float_dtype(DType::I4));
  EXPECT_TRUE(is_quantized_dtype(DType::I8));
  EXPECT_FALSE(is_quantized_dtype(DType::F16));
}

// ---- fp16 -------------------------------------------------------------

TEST(Fp16, GoldenValues) {
  EXPECT_EQ(f32_to_f16_bits(0.0f), 0x0000);
  EXPECT_EQ(f32_to_f16_bits(-0.0f), 0x8000);
  EXPECT_EQ(f32_to_f16_bits(1.0f), 0x3C00);
  EXPECT_EQ(f32_to_f16_bits(-2.0f), 0xC000);
  EXPECT_EQ(f32_to_f16_bits(0.5f), 0x3800);
  EXPECT_EQ(f32_to_f16_bits(65504.0f), 0x7BFF);  // max finite
  EXPECT_EQ(f32_to_f16_bits(65536.0f), 0x7C00);  // overflow -> inf
  EXPECT_EQ(f32_to_f16_bits(std::numeric_limits<float>::infinity()), 0x7C00);
  // Smallest positive subnormal: 2^-24.
  EXPECT_EQ(f32_to_f16_bits(std::ldexp(1.0f, -24)), 0x0001);
  // Smallest normal: 2^-14.
  EXPECT_EQ(f32_to_f16_bits(std::ldexp(1.0f, -14)), 0x0400);
}

TEST(Fp16, DecodeGolden) {
  EXPECT_FLOAT_EQ(f16_bits_to_f32(0x3C00), 1.0f);
  EXPECT_FLOAT_EQ(f16_bits_to_f32(0x3800), 0.5f);
  EXPECT_FLOAT_EQ(f16_bits_to_f32(0x7BFF), 65504.0f);
  EXPECT_FLOAT_EQ(f16_bits_to_f32(0x0001), std::ldexp(1.0f, -24));
  EXPECT_FLOAT_EQ(f16_bits_to_f32(0x0400), std::ldexp(1.0f, -14));
  EXPECT_TRUE(std::isinf(f16_bits_to_f32(0x7C00)));
  EXPECT_TRUE(std::isnan(f16_bits_to_f32(0x7E00)));
  EXPECT_TRUE(std::signbit(f16_bits_to_f32(0x8000)));
}

TEST(Fp16, EncodeDecodeIsIdentityOnAllBitPatterns) {
  // Every finite fp16 value must survive a decode -> encode round trip
  // exactly (the involution property the memory-fault restore relies on).
  for (std::uint32_t bits = 0; bits <= 0xFFFF; ++bits) {
    const auto h = static_cast<std::uint16_t>(bits);
    const float f = f16_bits_to_f32(h);
    if (std::isnan(f)) continue;  // NaN payloads may canonicalize
    EXPECT_EQ(f32_to_f16_bits(f), h) << "bits=0x" << std::hex << bits;
  }
}

TEST(Fp16, RoundToNearestEven) {
  // 1 + 2^-11 sits exactly between 1.0 and the next fp16 (1 + 2^-10):
  // round-to-even picks 1.0 (even mantissa).
  EXPECT_EQ(f32_to_f16_bits(1.0f + std::ldexp(1.0f, -11)), 0x3C00);
  // 1 + 3*2^-11 sits between 1+2^-10 and 1+2^-9: even is 1+2^-9.
  EXPECT_EQ(f32_to_f16_bits(1.0f + 3 * std::ldexp(1.0f, -11)), 0x3C02);
  // Slightly above the halfway point rounds up.
  EXPECT_EQ(f32_to_f16_bits(1.0f + std::ldexp(1.0f, -11) * 1.01f), 0x3C01);
}

// ---- bf16 -------------------------------------------------------------

TEST(Bf16, GoldenValues) {
  EXPECT_EQ(f32_to_bf16_bits(1.0f), 0x3F80);
  EXPECT_EQ(f32_to_bf16_bits(-1.0f), 0xBF80);
  EXPECT_EQ(f32_to_bf16_bits(0.5f), 0x3F00);
  EXPECT_TRUE(std::isinf(bf16_bits_to_f32(0x7F80)));
  EXPECT_TRUE(std::isnan(bf16_bits_to_f32(0x7FC0)));
}

TEST(Bf16, EncodeDecodeIsIdentityOnAllBitPatterns) {
  for (std::uint32_t bits = 0; bits <= 0xFFFF; ++bits) {
    const auto h = static_cast<std::uint16_t>(bits);
    const float f = bf16_bits_to_f32(h);
    if (std::isnan(f)) continue;
    EXPECT_EQ(f32_to_bf16_bits(f), h) << "bits=0x" << std::hex << bits;
  }
}

TEST(Bf16, RoundsToNearestEven) {
  // The bf16 ulp at 1.0 is 2^-7. Exactly 0.5 ulp above 1.0 ties to the
  // even mantissa (1.0); exactly 1.5 ulp ties to 2 ulp.
  EXPECT_EQ(f32_to_bf16_bits(1.0f + std::ldexp(1.0f, -8)), 0x3F80);
  EXPECT_EQ(f32_to_bf16_bits(1.0f + 3 * std::ldexp(1.0f, -8)), 0x3F82);
  // 0.75 ulp above 1.0 is closest to 1 ulp.
  EXPECT_EQ(f32_to_bf16_bits(1.0f + 3 * std::ldexp(1.0f, -9)), 0x3F81);
}

TEST(Bf16, HugeRangeMatchesF32) {
  EXPECT_FLOAT_EQ(round_to_bf16(1.0e38f), bf16_bits_to_f32(
      f32_to_bf16_bits(1.0e38f)));
  EXPECT_TRUE(std::isfinite(round_to_bf16(3.0e38f)));
}

// ---- bit flips ----------------------------------------------------------

TEST(BitFlip, MsbExponentFlipBlowsUpBf16ButNotFp16) {
  // The paper's §4.2.5 example: flipping the top exponent bit of 0.5.
  const float bf = flip_float_bit(0.5f, DType::BF16, 14);
  const float fp = flip_float_bit(0.5f, DType::F16, 14);
  EXPECT_GT(bf, 1.0e38f);
  EXPECT_LE(fp, 65504.0f);
  EXPECT_FLOAT_EQ(fp, 32768.0f);
}

TEST(BitFlip, SignBit) {
  EXPECT_FLOAT_EQ(flip_float_bit(1.5f, DType::F32, 31), -1.5f);
  EXPECT_FLOAT_EQ(flip_float_bit(1.5f, DType::F16, 15), -1.5f);
  EXPECT_FLOAT_EQ(flip_float_bit(1.5f, DType::BF16, 15), -1.5f);
}

class BitFlipInvolution
    : public ::testing::TestWithParam<std::tuple<DType, int>> {};

TEST_P(BitFlipInvolution, DoubleFlipRestoresValue) {
  const auto [dtype, bit] = GetParam();
  Rng rng(static_cast<std::uint64_t>(bit) * 31 + 7);
  for (int i = 0; i < 50; ++i) {
    float v = static_cast<float>(rng.normal(0.0, 2.0));
    // Values must be representable in the dtype for exact restore.
    if (dtype == DType::F16) v = round_to_f16(v);
    if (dtype == DType::BF16) v = round_to_bf16(v);
    const float once = flip_float_bit(v, dtype, bit);
    const float twice = flip_float_bit(once, dtype, bit);
    if (std::isnan(v)) continue;
    EXPECT_EQ(f32_bits(twice), f32_bits(v))
        << "dtype=" << dtype_name(dtype) << " bit=" << bit << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFloatBits, BitFlipInvolution,
    ::testing::Values(
        std::make_tuple(DType::F32, 0), std::make_tuple(DType::F32, 15),
        std::make_tuple(DType::F32, 23), std::make_tuple(DType::F32, 30),
        std::make_tuple(DType::F32, 31), std::make_tuple(DType::F16, 0),
        std::make_tuple(DType::F16, 9), std::make_tuple(DType::F16, 10),
        std::make_tuple(DType::F16, 14), std::make_tuple(DType::F16, 15),
        std::make_tuple(DType::BF16, 0), std::make_tuple(DType::BF16, 6),
        std::make_tuple(DType::BF16, 7), std::make_tuple(DType::BF16, 14),
        std::make_tuple(DType::BF16, 15)));

TEST(BitFlip, MultiBitFlipOrderIrrelevant) {
  const int bits_a[2] = {30, 22};
  const int bits_b[2] = {22, 30};
  EXPECT_EQ(f32_bits(flip_float_bits(1.25f, DType::F32, bits_a)),
            f32_bits(flip_float_bits(1.25f, DType::F32, bits_b)));
}

TEST(BitFlip, IntPayloadFlips) {
  // I4: flipping the sign bit of +3 (0b0011) gives -5 (0b1011).
  EXPECT_EQ(flip_int_bit(3, 4, 3), -5);
  EXPECT_EQ(flip_int_bit(-5, 4, 3), 3);  // involution
  // I8: flipping bit 0 of 0 gives 1.
  EXPECT_EQ(flip_int_bit(0, 8, 0), 1);
  // I8 sign bit: 1 -> -127.
  EXPECT_EQ(flip_int_bit(1, 8, 7), -127);
}

TEST(BitFlip, IntFlipBoundedDeviation) {
  // The core of Observation #8: an int payload flip moves the value by at
  // most 2^(bits-1) quantization steps.
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const auto v = static_cast<std::int32_t>(rng.uniform_int(-8, 7));
    const int bit = static_cast<int>(rng.uniform_u64(4));
    const std::int32_t flipped = flip_int_bit(v, 4, bit);
    EXPECT_LE(std::abs(flipped - v), 8);
    EXPECT_GE(flipped, -8);
    EXPECT_LE(flipped, 7);
  }
}

TEST(BitFlip, IsExtreme) {
  EXPECT_TRUE(is_extreme(std::numeric_limits<float>::quiet_NaN(), 1e4f));
  EXPECT_TRUE(is_extreme(std::numeric_limits<float>::infinity(), 1e4f));
  EXPECT_TRUE(is_extreme(-2e4f, 1e4f));
  EXPECT_FALSE(is_extreme(5.0f, 1e4f));
}

// ---- RNG ----------------------------------------------------------------

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkIsOrderIndependent) {
  Rng a(9);
  Rng f1 = a.fork(5);
  a.next_u64();  // advancing the parent must not change fork streams
  Rng f2 = a.fork(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(f1.next_u64(), f2.next_u64());
}

TEST(Rng, ForkStreamsDiffer) {
  Rng a(9);
  Rng f1 = a.fork(1), f2 = a.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (f1.next_u64() == f2.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 3000; ++i) {
    const auto v = rng.uniform_u64(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(12);
  double sum = 0.0, sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(Rng, Bernoulli) {
  Rng rng(13);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

}  // namespace
}  // namespace llmfi::num
