file(REMOVE_RECURSE
  "CMakeFiles/fig18_beam_vs_greedy.dir/fig18_beam_vs_greedy.cpp.o"
  "CMakeFiles/fig18_beam_vs_greedy.dir/fig18_beam_vs_greedy.cpp.o.d"
  "fig18_beam_vs_greedy"
  "fig18_beam_vs_greedy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_beam_vs_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
