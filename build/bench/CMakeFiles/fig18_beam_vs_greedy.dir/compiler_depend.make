# Empty compiler generated dependencies file for fig18_beam_vs_greedy.
# This may be replaced when dependencies are built.
