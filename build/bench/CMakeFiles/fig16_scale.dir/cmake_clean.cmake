file(REMOVE_RECURSE
  "CMakeFiles/fig16_scale.dir/fig16_scale.cpp.o"
  "CMakeFiles/fig16_scale.dir/fig16_scale.cpp.o.d"
  "fig16_scale"
  "fig16_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
