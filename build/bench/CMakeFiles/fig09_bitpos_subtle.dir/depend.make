# Empty dependencies file for fig09_bitpos_subtle.
# This may be replaced when dependencies are built.
