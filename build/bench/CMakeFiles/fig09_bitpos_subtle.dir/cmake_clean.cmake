file(REMOVE_RECURSE
  "CMakeFiles/fig09_bitpos_subtle.dir/fig09_bitpos_subtle.cpp.o"
  "CMakeFiles/fig09_bitpos_subtle.dir/fig09_bitpos_subtle.cpp.o.d"
  "fig09_bitpos_subtle"
  "fig09_bitpos_subtle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_bitpos_subtle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
