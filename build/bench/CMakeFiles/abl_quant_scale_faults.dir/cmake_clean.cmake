file(REMOVE_RECURSE
  "CMakeFiles/abl_quant_scale_faults.dir/abl_quant_scale_faults.cpp.o"
  "CMakeFiles/abl_quant_scale_faults.dir/abl_quant_scale_faults.cpp.o.d"
  "abl_quant_scale_faults"
  "abl_quant_scale_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_quant_scale_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
