# Empty dependencies file for abl_quant_scale_faults.
# This may be replaced when dependencies are built.
