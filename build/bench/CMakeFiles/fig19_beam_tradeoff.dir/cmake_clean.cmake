file(REMOVE_RECURSE
  "CMakeFiles/fig19_beam_tradeoff.dir/fig19_beam_tradeoff.cpp.o"
  "CMakeFiles/fig19_beam_tradeoff.dir/fig19_beam_tradeoff.cpp.o.d"
  "fig19_beam_tradeoff"
  "fig19_beam_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_beam_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
