# Empty dependencies file for fig19_beam_tradeoff.
# This may be replaced when dependencies are built.
