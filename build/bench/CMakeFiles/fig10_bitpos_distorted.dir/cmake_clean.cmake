file(REMOVE_RECURSE
  "CMakeFiles/fig10_bitpos_distorted.dir/fig10_bitpos_distorted.cpp.o"
  "CMakeFiles/fig10_bitpos_distorted.dir/fig10_bitpos_distorted.cpp.o.d"
  "fig10_bitpos_distorted"
  "fig10_bitpos_distorted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_bitpos_distorted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
