# Empty compiler generated dependencies file for fig10_bitpos_distorted.
# This may be replaced when dependencies are built.
