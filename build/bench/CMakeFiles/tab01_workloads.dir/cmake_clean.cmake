file(REMOVE_RECURSE
  "CMakeFiles/tab01_workloads.dir/tab01_workloads.cpp.o"
  "CMakeFiles/tab01_workloads.dir/tab01_workloads.cpp.o.d"
  "tab01_workloads"
  "tab01_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
