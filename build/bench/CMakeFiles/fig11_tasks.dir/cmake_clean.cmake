file(REMOVE_RECURSE
  "CMakeFiles/fig11_tasks.dir/fig11_tasks.cpp.o"
  "CMakeFiles/fig11_tasks.dir/fig11_tasks.cpp.o.d"
  "fig11_tasks"
  "fig11_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
