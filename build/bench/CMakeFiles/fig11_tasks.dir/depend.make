# Empty dependencies file for fig11_tasks.
# This may be replaced when dependencies are built.
