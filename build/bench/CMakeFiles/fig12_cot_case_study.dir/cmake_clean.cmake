file(REMOVE_RECURSE
  "CMakeFiles/fig12_cot_case_study.dir/fig12_cot_case_study.cpp.o"
  "CMakeFiles/fig12_cot_case_study.dir/fig12_cot_case_study.cpp.o.d"
  "fig12_cot_case_study"
  "fig12_cot_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_cot_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
