# Empty compiler generated dependencies file for fig12_cot_case_study.
# This may be replaced when dependencies are built.
