file(REMOVE_RECURSE
  "CMakeFiles/fig20_cot.dir/fig20_cot.cpp.o"
  "CMakeFiles/fig20_cot.dir/fig20_cot.cpp.o.d"
  "fig20_cot"
  "fig20_cot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_cot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
