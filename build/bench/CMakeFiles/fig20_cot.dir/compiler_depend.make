# Empty compiler generated dependencies file for fig20_cot.
# This may be replaced when dependencies are built.
