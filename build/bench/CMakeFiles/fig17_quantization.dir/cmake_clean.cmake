file(REMOVE_RECURSE
  "CMakeFiles/fig17_quantization.dir/fig17_quantization.cpp.o"
  "CMakeFiles/fig17_quantization.dir/fig17_quantization.cpp.o.d"
  "fig17_quantization"
  "fig17_quantization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
