# Empty dependencies file for fig17_quantization.
# This may be replaced when dependencies are built.
