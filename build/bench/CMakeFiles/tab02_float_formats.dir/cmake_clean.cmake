file(REMOVE_RECURSE
  "CMakeFiles/tab02_float_formats.dir/tab02_float_formats.cpp.o"
  "CMakeFiles/tab02_float_formats.dir/tab02_float_formats.cpp.o.d"
  "tab02_float_formats"
  "tab02_float_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_float_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
