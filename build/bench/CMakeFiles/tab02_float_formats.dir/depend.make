# Empty dependencies file for tab02_float_formats.
# This may be replaced when dependencies are built.
