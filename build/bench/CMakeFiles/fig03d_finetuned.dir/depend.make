# Empty dependencies file for fig03d_finetuned.
# This may be replaced when dependencies are built.
