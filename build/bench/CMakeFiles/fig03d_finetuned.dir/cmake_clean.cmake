file(REMOVE_RECURSE
  "CMakeFiles/fig03d_finetuned.dir/fig03d_finetuned.cpp.o"
  "CMakeFiles/fig03d_finetuned.dir/fig03d_finetuned.cpp.o.d"
  "fig03d_finetuned"
  "fig03d_finetuned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03d_finetuned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
