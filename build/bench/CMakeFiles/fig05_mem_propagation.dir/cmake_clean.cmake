file(REMOVE_RECURSE
  "CMakeFiles/fig05_mem_propagation.dir/fig05_mem_propagation.cpp.o"
  "CMakeFiles/fig05_mem_propagation.dir/fig05_mem_propagation.cpp.o.d"
  "fig05_mem_propagation"
  "fig05_mem_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_mem_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
