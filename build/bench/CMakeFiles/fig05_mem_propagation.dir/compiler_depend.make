# Empty compiler generated dependencies file for fig05_mem_propagation.
# This may be replaced when dependencies are built.
