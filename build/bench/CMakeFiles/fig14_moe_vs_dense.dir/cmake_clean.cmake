file(REMOVE_RECURSE
  "CMakeFiles/fig14_moe_vs_dense.dir/fig14_moe_vs_dense.cpp.o"
  "CMakeFiles/fig14_moe_vs_dense.dir/fig14_moe_vs_dense.cpp.o.d"
  "fig14_moe_vs_dense"
  "fig14_moe_vs_dense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_moe_vs_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
