# Empty dependencies file for fig13_weight_distributions.
# This may be replaced when dependencies are built.
