file(REMOVE_RECURSE
  "CMakeFiles/fig13_weight_distributions.dir/fig13_weight_distributions.cpp.o"
  "CMakeFiles/fig13_weight_distributions.dir/fig13_weight_distributions.cpp.o.d"
  "fig13_weight_distributions"
  "fig13_weight_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_weight_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
