file(REMOVE_RECURSE
  "CMakeFiles/fig06_comp_propagation.dir/fig06_comp_propagation.cpp.o"
  "CMakeFiles/fig06_comp_propagation.dir/fig06_comp_propagation.cpp.o.d"
  "fig06_comp_propagation"
  "fig06_comp_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_comp_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
