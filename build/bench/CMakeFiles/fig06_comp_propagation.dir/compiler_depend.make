# Empty compiler generated dependencies file for fig06_comp_propagation.
# This may be replaced when dependencies are built.
