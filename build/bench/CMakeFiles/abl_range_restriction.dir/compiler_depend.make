# Empty compiler generated dependencies file for abl_range_restriction.
# This may be replaced when dependencies are built.
