file(REMOVE_RECURSE
  "CMakeFiles/abl_range_restriction.dir/abl_range_restriction.cpp.o"
  "CMakeFiles/abl_range_restriction.dir/abl_range_restriction.cpp.o.d"
  "abl_range_restriction"
  "abl_range_restriction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_range_restriction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
