# Empty compiler generated dependencies file for fig21_dtypes.
# This may be replaced when dependencies are built.
