file(REMOVE_RECURSE
  "CMakeFiles/fig21_dtypes.dir/fig21_dtypes.cpp.o"
  "CMakeFiles/fig21_dtypes.dir/fig21_dtypes.cpp.o.d"
  "fig21_dtypes"
  "fig21_dtypes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_dtypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
