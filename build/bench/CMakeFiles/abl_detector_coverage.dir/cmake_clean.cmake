file(REMOVE_RECURSE
  "CMakeFiles/abl_detector_coverage.dir/abl_detector_coverage.cpp.o"
  "CMakeFiles/abl_detector_coverage.dir/abl_detector_coverage.cpp.o.d"
  "abl_detector_coverage"
  "abl_detector_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_detector_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
