# Empty compiler generated dependencies file for abl_detector_coverage.
# This may be replaced when dependencies are built.
