file(REMOVE_RECURSE
  "CMakeFiles/fig03_overall.dir/fig03_overall.cpp.o"
  "CMakeFiles/fig03_overall.dir/fig03_overall.cpp.o.d"
  "fig03_overall"
  "fig03_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
