# Empty dependencies file for fig03_overall.
# This may be replaced when dependencies are built.
