file(REMOVE_RECURSE
  "CMakeFiles/fig08_sdc_breakdown.dir/fig08_sdc_breakdown.cpp.o"
  "CMakeFiles/fig08_sdc_breakdown.dir/fig08_sdc_breakdown.cpp.o.d"
  "fig08_sdc_breakdown"
  "fig08_sdc_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_sdc_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
