file(REMOVE_RECURSE
  "CMakeFiles/fig15_gate_faults.dir/fig15_gate_faults.cpp.o"
  "CMakeFiles/fig15_gate_faults.dir/fig15_gate_faults.cpp.o.d"
  "fig15_gate_faults"
  "fig15_gate_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_gate_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
