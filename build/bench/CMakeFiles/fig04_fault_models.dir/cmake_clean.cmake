file(REMOVE_RECURSE
  "CMakeFiles/fig04_fault_models.dir/fig04_fault_models.cpp.o"
  "CMakeFiles/fig04_fault_models.dir/fig04_fault_models.cpp.o.d"
  "fig04_fault_models"
  "fig04_fault_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_fault_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
