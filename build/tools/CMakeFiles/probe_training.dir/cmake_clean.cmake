file(REMOVE_RECURSE
  "CMakeFiles/probe_training.dir/probe_training.cpp.o"
  "CMakeFiles/probe_training.dir/probe_training.cpp.o.d"
  "probe_training"
  "probe_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
