# Empty dependencies file for probe_training.
# This may be replaced when dependencies are built.
