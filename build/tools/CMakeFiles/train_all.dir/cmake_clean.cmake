file(REMOVE_RECURSE
  "CMakeFiles/train_all.dir/train_all.cpp.o"
  "CMakeFiles/train_all.dir/train_all.cpp.o.d"
  "train_all"
  "train_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
