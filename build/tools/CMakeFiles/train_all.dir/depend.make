# Empty dependencies file for train_all.
# This may be replaced when dependencies are built.
