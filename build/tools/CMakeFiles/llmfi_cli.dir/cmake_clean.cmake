file(REMOVE_RECURSE
  "CMakeFiles/llmfi_cli.dir/llmfi_cli.cpp.o"
  "CMakeFiles/llmfi_cli.dir/llmfi_cli.cpp.o.d"
  "llmfi_cli"
  "llmfi_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llmfi_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
