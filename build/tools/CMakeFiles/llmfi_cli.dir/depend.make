# Empty dependencies file for llmfi_cli.
# This may be replaced when dependencies are built.
