file(REMOVE_RECURSE
  "CMakeFiles/math_cot_fi.dir/math_cot_fi.cpp.o"
  "CMakeFiles/math_cot_fi.dir/math_cot_fi.cpp.o.d"
  "math_cot_fi"
  "math_cot_fi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/math_cot_fi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
