# Empty compiler generated dependencies file for math_cot_fi.
# This may be replaced when dependencies are built.
