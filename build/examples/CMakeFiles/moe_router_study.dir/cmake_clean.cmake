file(REMOVE_RECURSE
  "CMakeFiles/moe_router_study.dir/moe_router_study.cpp.o"
  "CMakeFiles/moe_router_study.dir/moe_router_study.cpp.o.d"
  "moe_router_study"
  "moe_router_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moe_router_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
