# Empty compiler generated dependencies file for moe_router_study.
# This may be replaced when dependencies are built.
