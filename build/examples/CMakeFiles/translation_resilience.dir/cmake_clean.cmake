file(REMOVE_RECURSE
  "CMakeFiles/translation_resilience.dir/translation_resilience.cpp.o"
  "CMakeFiles/translation_resilience.dir/translation_resilience.cpp.o.d"
  "translation_resilience"
  "translation_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translation_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
