# Empty compiler generated dependencies file for translation_resilience.
# This may be replaced when dependencies are built.
