file(REMOVE_RECURSE
  "libllmfi_nn.a"
)
