# Empty dependencies file for llmfi_nn.
# This may be replaced when dependencies are built.
