file(REMOVE_RECURSE
  "CMakeFiles/llmfi_nn.dir/kv_cache.cpp.o"
  "CMakeFiles/llmfi_nn.dir/kv_cache.cpp.o.d"
  "CMakeFiles/llmfi_nn.dir/layer_id.cpp.o"
  "CMakeFiles/llmfi_nn.dir/layer_id.cpp.o.d"
  "CMakeFiles/llmfi_nn.dir/rope.cpp.o"
  "CMakeFiles/llmfi_nn.dir/rope.cpp.o.d"
  "CMakeFiles/llmfi_nn.dir/weight_matrix.cpp.o"
  "CMakeFiles/llmfi_nn.dir/weight_matrix.cpp.o.d"
  "libllmfi_nn.a"
  "libllmfi_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llmfi_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
