
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/kv_cache.cpp" "src/nn/CMakeFiles/llmfi_nn.dir/kv_cache.cpp.o" "gcc" "src/nn/CMakeFiles/llmfi_nn.dir/kv_cache.cpp.o.d"
  "/root/repo/src/nn/layer_id.cpp" "src/nn/CMakeFiles/llmfi_nn.dir/layer_id.cpp.o" "gcc" "src/nn/CMakeFiles/llmfi_nn.dir/layer_id.cpp.o.d"
  "/root/repo/src/nn/rope.cpp" "src/nn/CMakeFiles/llmfi_nn.dir/rope.cpp.o" "gcc" "src/nn/CMakeFiles/llmfi_nn.dir/rope.cpp.o.d"
  "/root/repo/src/nn/weight_matrix.cpp" "src/nn/CMakeFiles/llmfi_nn.dir/weight_matrix.cpp.o" "gcc" "src/nn/CMakeFiles/llmfi_nn.dir/weight_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numerics/CMakeFiles/llmfi_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/llmfi_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/llmfi_quant.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
