# Empty compiler generated dependencies file for llmfi_quant.
# This may be replaced when dependencies are built.
