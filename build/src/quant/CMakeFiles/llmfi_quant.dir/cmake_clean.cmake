file(REMOVE_RECURSE
  "CMakeFiles/llmfi_quant.dir/quantized_matrix.cpp.o"
  "CMakeFiles/llmfi_quant.dir/quantized_matrix.cpp.o.d"
  "libllmfi_quant.a"
  "libllmfi_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llmfi_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
