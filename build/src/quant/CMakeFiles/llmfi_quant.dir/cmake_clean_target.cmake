file(REMOVE_RECURSE
  "libllmfi_quant.a"
)
