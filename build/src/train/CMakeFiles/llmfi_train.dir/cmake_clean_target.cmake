file(REMOVE_RECURSE
  "libllmfi_train.a"
)
