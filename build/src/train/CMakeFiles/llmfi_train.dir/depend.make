# Empty dependencies file for llmfi_train.
# This may be replaced when dependencies are built.
