file(REMOVE_RECURSE
  "CMakeFiles/llmfi_train.dir/trainer.cpp.o"
  "CMakeFiles/llmfi_train.dir/trainer.cpp.o.d"
  "libllmfi_train.a"
  "libllmfi_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llmfi_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
