file(REMOVE_RECURSE
  "libllmfi_report.a"
)
