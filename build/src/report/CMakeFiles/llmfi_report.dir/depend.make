# Empty dependencies file for llmfi_report.
# This may be replaced when dependencies are built.
