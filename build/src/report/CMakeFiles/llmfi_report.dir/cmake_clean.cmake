file(REMOVE_RECURSE
  "CMakeFiles/llmfi_report.dir/table.cpp.o"
  "CMakeFiles/llmfi_report.dir/table.cpp.o.d"
  "libllmfi_report.a"
  "libllmfi_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llmfi_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
