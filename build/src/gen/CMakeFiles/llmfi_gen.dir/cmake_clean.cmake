file(REMOVE_RECURSE
  "CMakeFiles/llmfi_gen.dir/generate.cpp.o"
  "CMakeFiles/llmfi_gen.dir/generate.cpp.o.d"
  "libllmfi_gen.a"
  "libllmfi_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llmfi_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
