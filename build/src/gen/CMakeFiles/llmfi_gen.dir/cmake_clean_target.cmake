file(REMOVE_RECURSE
  "libllmfi_gen.a"
)
