# Empty compiler generated dependencies file for llmfi_gen.
# This may be replaced when dependencies are built.
