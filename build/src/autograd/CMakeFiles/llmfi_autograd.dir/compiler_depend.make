# Empty compiler generated dependencies file for llmfi_autograd.
# This may be replaced when dependencies are built.
