file(REMOVE_RECURSE
  "libllmfi_autograd.a"
)
