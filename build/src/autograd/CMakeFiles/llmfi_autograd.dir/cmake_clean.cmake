file(REMOVE_RECURSE
  "CMakeFiles/llmfi_autograd.dir/moe_op.cpp.o"
  "CMakeFiles/llmfi_autograd.dir/moe_op.cpp.o.d"
  "CMakeFiles/llmfi_autograd.dir/ops.cpp.o"
  "CMakeFiles/llmfi_autograd.dir/ops.cpp.o.d"
  "CMakeFiles/llmfi_autograd.dir/var.cpp.o"
  "CMakeFiles/llmfi_autograd.dir/var.cpp.o.d"
  "libllmfi_autograd.a"
  "libllmfi_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llmfi_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
