file(REMOVE_RECURSE
  "CMakeFiles/llmfi_tensor.dir/ops.cpp.o"
  "CMakeFiles/llmfi_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/llmfi_tensor.dir/tensor.cpp.o"
  "CMakeFiles/llmfi_tensor.dir/tensor.cpp.o.d"
  "libllmfi_tensor.a"
  "libllmfi_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llmfi_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
