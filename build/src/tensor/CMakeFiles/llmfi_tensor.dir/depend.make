# Empty dependencies file for llmfi_tensor.
# This may be replaced when dependencies are built.
