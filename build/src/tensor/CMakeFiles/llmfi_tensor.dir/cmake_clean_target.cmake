file(REMOVE_RECURSE
  "libllmfi_tensor.a"
)
