file(REMOVE_RECURSE
  "CMakeFiles/llmfi_numerics.dir/bitflip.cpp.o"
  "CMakeFiles/llmfi_numerics.dir/bitflip.cpp.o.d"
  "CMakeFiles/llmfi_numerics.dir/dtype.cpp.o"
  "CMakeFiles/llmfi_numerics.dir/dtype.cpp.o.d"
  "CMakeFiles/llmfi_numerics.dir/half.cpp.o"
  "CMakeFiles/llmfi_numerics.dir/half.cpp.o.d"
  "CMakeFiles/llmfi_numerics.dir/rng.cpp.o"
  "CMakeFiles/llmfi_numerics.dir/rng.cpp.o.d"
  "libllmfi_numerics.a"
  "libllmfi_numerics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llmfi_numerics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
