
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numerics/bitflip.cpp" "src/numerics/CMakeFiles/llmfi_numerics.dir/bitflip.cpp.o" "gcc" "src/numerics/CMakeFiles/llmfi_numerics.dir/bitflip.cpp.o.d"
  "/root/repo/src/numerics/dtype.cpp" "src/numerics/CMakeFiles/llmfi_numerics.dir/dtype.cpp.o" "gcc" "src/numerics/CMakeFiles/llmfi_numerics.dir/dtype.cpp.o.d"
  "/root/repo/src/numerics/half.cpp" "src/numerics/CMakeFiles/llmfi_numerics.dir/half.cpp.o" "gcc" "src/numerics/CMakeFiles/llmfi_numerics.dir/half.cpp.o.d"
  "/root/repo/src/numerics/rng.cpp" "src/numerics/CMakeFiles/llmfi_numerics.dir/rng.cpp.o" "gcc" "src/numerics/CMakeFiles/llmfi_numerics.dir/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
