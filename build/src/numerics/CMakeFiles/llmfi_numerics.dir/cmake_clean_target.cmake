file(REMOVE_RECURSE
  "libllmfi_numerics.a"
)
