# Empty dependencies file for llmfi_numerics.
# This may be replaced when dependencies are built.
