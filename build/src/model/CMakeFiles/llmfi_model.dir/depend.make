# Empty dependencies file for llmfi_model.
# This may be replaced when dependencies are built.
