file(REMOVE_RECURSE
  "CMakeFiles/llmfi_model.dir/config.cpp.o"
  "CMakeFiles/llmfi_model.dir/config.cpp.o.d"
  "CMakeFiles/llmfi_model.dir/transformer.cpp.o"
  "CMakeFiles/llmfi_model.dir/transformer.cpp.o.d"
  "CMakeFiles/llmfi_model.dir/weights.cpp.o"
  "CMakeFiles/llmfi_model.dir/weights.cpp.o.d"
  "libllmfi_model.a"
  "libllmfi_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llmfi_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
