file(REMOVE_RECURSE
  "libllmfi_model.a"
)
