# Empty dependencies file for llmfi_metrics.
# This may be replaced when dependencies are built.
