file(REMOVE_RECURSE
  "CMakeFiles/llmfi_metrics.dir/stats.cpp.o"
  "CMakeFiles/llmfi_metrics.dir/stats.cpp.o.d"
  "CMakeFiles/llmfi_metrics.dir/text_metrics.cpp.o"
  "CMakeFiles/llmfi_metrics.dir/text_metrics.cpp.o.d"
  "libllmfi_metrics.a"
  "libllmfi_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llmfi_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
