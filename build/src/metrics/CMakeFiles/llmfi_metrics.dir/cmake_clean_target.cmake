file(REMOVE_RECURSE
  "libllmfi_metrics.a"
)
