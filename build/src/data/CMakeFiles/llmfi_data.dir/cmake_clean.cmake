file(REMOVE_RECURSE
  "CMakeFiles/llmfi_data.dir/tasks.cpp.o"
  "CMakeFiles/llmfi_data.dir/tasks.cpp.o.d"
  "CMakeFiles/llmfi_data.dir/world.cpp.o"
  "CMakeFiles/llmfi_data.dir/world.cpp.o.d"
  "libllmfi_data.a"
  "libllmfi_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llmfi_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
