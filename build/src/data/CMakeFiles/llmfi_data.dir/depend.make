# Empty dependencies file for llmfi_data.
# This may be replaced when dependencies are built.
