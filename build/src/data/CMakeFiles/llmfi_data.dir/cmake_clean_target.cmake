file(REMOVE_RECURSE
  "libllmfi_data.a"
)
