file(REMOVE_RECURSE
  "libllmfi_core.a"
)
