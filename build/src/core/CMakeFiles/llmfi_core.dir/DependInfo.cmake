
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/detector.cpp" "src/core/CMakeFiles/llmfi_core.dir/detector.cpp.o" "gcc" "src/core/CMakeFiles/llmfi_core.dir/detector.cpp.o.d"
  "/root/repo/src/core/fault_model.cpp" "src/core/CMakeFiles/llmfi_core.dir/fault_model.cpp.o" "gcc" "src/core/CMakeFiles/llmfi_core.dir/fault_model.cpp.o.d"
  "/root/repo/src/core/fault_plan.cpp" "src/core/CMakeFiles/llmfi_core.dir/fault_plan.cpp.o" "gcc" "src/core/CMakeFiles/llmfi_core.dir/fault_plan.cpp.o.d"
  "/root/repo/src/core/injector.cpp" "src/core/CMakeFiles/llmfi_core.dir/injector.cpp.o" "gcc" "src/core/CMakeFiles/llmfi_core.dir/injector.cpp.o.d"
  "/root/repo/src/core/mitigation.cpp" "src/core/CMakeFiles/llmfi_core.dir/mitigation.cpp.o" "gcc" "src/core/CMakeFiles/llmfi_core.dir/mitigation.cpp.o.d"
  "/root/repo/src/core/outcome.cpp" "src/core/CMakeFiles/llmfi_core.dir/outcome.cpp.o" "gcc" "src/core/CMakeFiles/llmfi_core.dir/outcome.cpp.o.d"
  "/root/repo/src/core/tracer.cpp" "src/core/CMakeFiles/llmfi_core.dir/tracer.cpp.o" "gcc" "src/core/CMakeFiles/llmfi_core.dir/tracer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/llmfi_model.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/llmfi_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/llmfi_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/llmfi_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/llmfi_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/llmfi_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/tokenizer/CMakeFiles/llmfi_tokenizer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
