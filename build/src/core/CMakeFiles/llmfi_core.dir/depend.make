# Empty dependencies file for llmfi_core.
# This may be replaced when dependencies are built.
