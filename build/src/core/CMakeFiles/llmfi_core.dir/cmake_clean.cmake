file(REMOVE_RECURSE
  "CMakeFiles/llmfi_core.dir/detector.cpp.o"
  "CMakeFiles/llmfi_core.dir/detector.cpp.o.d"
  "CMakeFiles/llmfi_core.dir/fault_model.cpp.o"
  "CMakeFiles/llmfi_core.dir/fault_model.cpp.o.d"
  "CMakeFiles/llmfi_core.dir/fault_plan.cpp.o"
  "CMakeFiles/llmfi_core.dir/fault_plan.cpp.o.d"
  "CMakeFiles/llmfi_core.dir/injector.cpp.o"
  "CMakeFiles/llmfi_core.dir/injector.cpp.o.d"
  "CMakeFiles/llmfi_core.dir/mitigation.cpp.o"
  "CMakeFiles/llmfi_core.dir/mitigation.cpp.o.d"
  "CMakeFiles/llmfi_core.dir/outcome.cpp.o"
  "CMakeFiles/llmfi_core.dir/outcome.cpp.o.d"
  "CMakeFiles/llmfi_core.dir/tracer.cpp.o"
  "CMakeFiles/llmfi_core.dir/tracer.cpp.o.d"
  "libllmfi_core.a"
  "libllmfi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llmfi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
