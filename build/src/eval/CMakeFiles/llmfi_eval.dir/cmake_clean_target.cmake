file(REMOVE_RECURSE
  "libllmfi_eval.a"
)
