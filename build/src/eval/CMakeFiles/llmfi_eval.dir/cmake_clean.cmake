file(REMOVE_RECURSE
  "CMakeFiles/llmfi_eval.dir/campaign.cpp.o"
  "CMakeFiles/llmfi_eval.dir/campaign.cpp.o.d"
  "CMakeFiles/llmfi_eval.dir/model_zoo.cpp.o"
  "CMakeFiles/llmfi_eval.dir/model_zoo.cpp.o.d"
  "CMakeFiles/llmfi_eval.dir/runner.cpp.o"
  "CMakeFiles/llmfi_eval.dir/runner.cpp.o.d"
  "CMakeFiles/llmfi_eval.dir/workloads.cpp.o"
  "CMakeFiles/llmfi_eval.dir/workloads.cpp.o.d"
  "libllmfi_eval.a"
  "libllmfi_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llmfi_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
