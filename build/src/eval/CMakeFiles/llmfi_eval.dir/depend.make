# Empty dependencies file for llmfi_eval.
# This may be replaced when dependencies are built.
