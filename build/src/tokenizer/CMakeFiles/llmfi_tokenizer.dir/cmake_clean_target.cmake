file(REMOVE_RECURSE
  "libllmfi_tokenizer.a"
)
