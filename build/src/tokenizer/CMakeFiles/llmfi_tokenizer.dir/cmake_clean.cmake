file(REMOVE_RECURSE
  "CMakeFiles/llmfi_tokenizer.dir/vocab.cpp.o"
  "CMakeFiles/llmfi_tokenizer.dir/vocab.cpp.o.d"
  "libllmfi_tokenizer.a"
  "libllmfi_tokenizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llmfi_tokenizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
