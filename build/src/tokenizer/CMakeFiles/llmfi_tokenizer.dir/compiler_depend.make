# Empty compiler generated dependencies file for llmfi_tokenizer.
# This may be replaced when dependencies are built.
