# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_numerics[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_tokenizer[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_quant[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_autograd[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_gen[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_train[1]_include.cmake")
include("/root/repo/build/tests/test_campaign[1]_include.cmake")
include("/root/repo/build/tests/test_mitigation[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_eval[1]_include.cmake")
include("/root/repo/build/tests/test_fault_semantics[1]_include.cmake")
include("/root/repo/build/tests/test_bench_util[1]_include.cmake")
