file(REMOVE_RECURSE
  "CMakeFiles/test_fault_semantics.dir/test_fault_semantics.cpp.o"
  "CMakeFiles/test_fault_semantics.dir/test_fault_semantics.cpp.o.d"
  "test_fault_semantics"
  "test_fault_semantics.pdb"
  "test_fault_semantics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fault_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
