# Empty compiler generated dependencies file for test_fault_semantics.
# This may be replaced when dependencies are built.
