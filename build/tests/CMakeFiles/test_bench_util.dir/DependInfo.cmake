
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bench_util.cpp" "tests/CMakeFiles/test_bench_util.dir/test_bench_util.cpp.o" "gcc" "tests/CMakeFiles/test_bench_util.dir/test_bench_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/llmfi_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/llmfi_report.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/llmfi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/llmfi_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/llmfi_train.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/llmfi_model.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/llmfi_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/llmfi_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/llmfi_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/llmfi_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/llmfi_data.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/llmfi_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/tokenizer/CMakeFiles/llmfi_tokenizer.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/llmfi_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
