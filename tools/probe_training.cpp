// Development probe: train one model configuration and report loss plus
// per-dataset baseline quality. Used to tune the zoo training recipes.
//
//   LLMFI_PROBE_STEPS=4000 LLMFI_PROBE_D=48 LLMFI_PROBE_L=2 ./probe_training

#include <cstdio>
#include <cstdlib>

#include "data/world.h"
#include "eval/model_zoo.h"
#include "eval/runner.h"
#include "eval/workloads.h"
#include "model/transformer.h"
#include "train/trainer.h"

using namespace llmfi;

namespace {
int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : fallback;
}
double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v ? std::atof(v) : fallback;
}
}  // namespace

int main() {
  data::World world;
  const int d = env_int("LLMFI_PROBE_D", 48);
  const int layers = env_int("LLMFI_PROBE_L", 2);
  const int steps = env_int("LLMFI_PROBE_STEPS", 2000);
  const double lr = env_double("LLMFI_PROBE_LR", 4e-3);
  const int batch = env_int("LLMFI_PROBE_BATCH", 8);

  model::ModelConfig cfg = model::family_config("qilin", world.vocab().size());
  cfg.d_model = d;
  cfg.n_layers = layers;
  cfg.d_ff = 2 * d;

  std::vector<std::pair<data::TaskKind, float>> mix = {
      {data::TaskKind::McFact, 1.0f},      {data::TaskKind::McScience, 1.0f},
      {data::TaskKind::McTruthful, 1.0f},  {data::TaskKind::McCoref, 1.0f},
      {data::TaskKind::McCompletion, 1.0f},{data::TaskKind::MathGsm, 2.5f},
      {data::TaskKind::Translation, 1.4f}, {data::TaskKind::Summarization, 1.0f},
      {data::TaskKind::QA, 2.5f},
  };
  std::map<data::TaskKind, data::TaskData> tasks;
  std::vector<data::TrainSeq> corpus;
  const int train_n = env_int("LLMFI_PROBE_TRAIN_N", 600);
  for (auto [kind, w] : mix) {
    data::GenOptions g;
    g.train_n = train_n;
    tasks.emplace(kind, data::make_task(world, kind, g));
    const auto& td = tasks.at(kind);
    const auto n = static_cast<size_t>(w * td.train.size());
    for (size_t i = 0; i < n; ++i) corpus.push_back(td.train[i % td.train.size()]);
  }
  std::printf("corpus: %zu sequences, vocab %d, params %lld\n", corpus.size(),
              world.vocab().size(),
              static_cast<long long>(cfg.num_params()));

  model::ModelWeights w = model::ModelWeights::init(cfg);
  train::TrainConfig tc;
  tc.steps = steps;
  tc.batch_size = batch;
  tc.lr = static_cast<float>(lr);
  tc.weight_decay = 0.02f;
  tc.log_every = steps / 10;
  train::Trainer trainer(w, tc);
  const double loss = trainer.train(corpus);
  std::printf("final loss %.4f\n", loss);

  model::InferenceModel engine(w, {});
  for (auto& [kind, td] : tasks) {
    const auto& spec = eval::workload(kind);
    double metric = 0.0;
    const int n = 20;
    for (int i = 0; i < n; ++i) {
      eval::RunOptions opt;
      auto r = eval::run_example(engine, world.vocab(), spec,
                                 td.eval[static_cast<size_t>(i)], opt);
      metric += r.metrics.at(spec.metrics.front().name);
    }
    std::printf("%-16s %-12s %.3f\n", spec.dataset.c_str(),
                spec.metrics.front().name.c_str(), metric / n);
    if (std::getenv("LLMFI_PROBE_DUMP") &&
        (kind == data::TaskKind::MathGsm || kind == data::TaskKind::QA)) {
      for (int i = 0; i < 5; ++i) {
        eval::RunOptions opt;
        auto r = eval::run_example(engine, world.vocab(), spec,
                                   td.eval[static_cast<size_t>(i)], opt);
        std::printf("  prompt: %s\n  out:    %s\n  ref:    %s\n",
                    td.eval[static_cast<size_t>(i)].prompt.c_str(),
                    r.output.c_str(),
                    td.eval[static_cast<size_t>(i)].reference.c_str());
      }
    }
  }
  return 0;
}
