// Trains (or verifies the cache of) every zoo model. Run once before the
// bench suite so each bench binary starts from warm checkpoints.
#include <cstdio>
#include "eval/model_zoo.h"

int main() {
  llmfi::eval::Zoo zoo;
  for (const auto& name : llmfi::eval::Zoo::model_names()) {
    const auto& w = zoo.get(name);
    std::printf("%-12s %8lld params  (d=%d, L=%d, ff=%d%s)\n", name.c_str(),
                static_cast<long long>(w.num_params()), w.config.d_model,
                w.config.n_layers, w.config.d_ff,
                w.config.moe ? ", MoE" : "");
  }
  return 0;
}
