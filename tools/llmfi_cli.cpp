// llmfi — command-line campaign driver.
//
// Runs one fault-injection campaign with everything configurable from
// the command line, printing an aligned table (or CSV):
//
//   llmfi_cli --model qilin --dataset gsm8k-syn --fault 2bits-mem
//             --trials 500 --inputs 20 --dtype bf16 --beams 1 --seed 7
//   llmfi_cli --list                 # models and datasets
//   llmfi_cli ... --csv              # machine-readable output
//   llmfi_cli ... --router-only      # gate-layer faults (Fig 15 scope)
//   llmfi_cli ... --direct           # math without chain-of-thought
//   llmfi_cli ... --detector stack --recovery   # online detect + recover

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "eval/campaign.h"
#include "eval/model_zoo.h"
#include "obs/obs.h"
#include "report/table.h"

using namespace llmfi;

namespace {

struct CliArgs {
  std::string model = "qilin";
  std::string dataset = "gsm8k-syn";
  std::string fault = "2bits-mem";
  std::string dtype = "bf16";
  int trials = 200;
  int inputs = 10;
  int beams = 1;
  int threads = 1;
  int batch = 1;
  int tp = 1;
  int kv_pages = 0;
  std::uint64_t seed = 2025;
  std::string detector = "none";  // none | range | checksum | stack
  bool recovery = false;
  int retries = 2;
  bool prefix_fork = true;
  bool csv = false;
  bool router_only = false;
  bool direct = false;
  bool list = false;
  bool help = false;
  std::string trace_file;    // --trace FILE (Chrome trace-event JSON)
  std::string metrics_file;  // --metrics FILE (.prom/.txt => Prometheus)
  std::string recorder_file; // --recorder FILE (flight-recorder JSON)
  bool progress = false;     // --progress (periodic stderr line)
};

void print_usage() {
  std::printf(
      "usage: llmfi_cli [options]\n"
      "  --model NAME     zoo model (default qilin; --list shows all)\n"
      "  --dataset NAME   workload dataset (default gsm8k-syn)\n"
      "  --fault MODEL    1bit-comp | 2bits-comp | 2bits-mem | kv-bit |\n"
      "                   tp-partial | tp-reduce\n"
      "                   (--fault-model is accepted as an alias; kv-bit\n"
      "                   flips one cached K/V element at a sampled pass —\n"
      "                   transient in origin, persistent in effect;\n"
      "                   tp-partial / tp-reduce flip a bit in a shard's\n"
      "                   partial sum / in the reduction tree of the\n"
      "                   row-parallel products, DESIGN.md §14)\n"
      "  --dtype D        fp32 | fp16 | bf16 | int8 | int4\n"
      "  --trials N       fault-injection trials (default 200)\n"
      "  --inputs N       evaluation inputs cycled (default 10)\n"
      "  --beams N        1 = greedy, >1 = beam search\n"
      "  --threads N      worker threads for the trial loop (default 1;\n"
      "                   results are bit-identical for any value)\n"
      "  --batch N        continuous-batching width per worker (default 1;\n"
      "                   N > 1 decodes up to N trials per forward pass via\n"
      "                   the serve scheduler — results are bit-identical\n"
      "                   for any value; ineligible campaigns fall back to\n"
      "                   the sequential loop with a warning; LLMFI_BATCH\n"
      "                   is the env equivalent)\n"
      "  --tp N           tensor-parallel shards per engine (default 1;\n"
      "                   results are byte-identical for any value — the\n"
      "                   reduction order is pinned, DESIGN.md §14; note\n"
      "                   threads x tp compute threads run concurrently;\n"
      "                   LLMFI_TP is the env equivalent)\n"
      "  --kv-pages N     back every KV cache with a shared N-page pool\n"
      "                   (DESIGN.md §12: prefix forks alias pages via\n"
      "                   copy-on-write; undersized budgets are clamped up\n"
      "                   with a warning; 0 = contiguous layout — results\n"
      "                   are byte-identical either way; LLMFI_KV_PAGES is\n"
      "                   the env equivalent)\n"
      "  --seed S         campaign seed\n"
      "  --detector D     online detection: none | range | checksum | stack\n"
      "                   (stack = checksum + range composed)\n"
      "  --recovery       recover on detection (recompute-the-pass for comp\n"
      "                   faults, weight-rescreen-and-restore for mem faults)\n"
      "  --retries N      recompute budget per detection (default 2)\n"
      "  --no-prefix-fork disable the baseline-prefix KV fork fast path\n"
      "                   (transient greedy trials resume at the sampled\n"
      "                   injection pass by default; results are\n"
      "                   bit-identical either way — LLMFI_PREFIX_FORK=0\n"
      "                   is the env equivalent)\n"
      "  --router-only    restrict faults to MoE gate layers\n"
      "  --direct         math task without chain-of-thought\n"
      "  --csv            CSV output\n"
      "  --list           list models and datasets, then exit\n"
      "  --trace FILE     write a Chrome trace-event JSON of phase spans\n"
      "                   (load in Perfetto / chrome://tracing; env\n"
      "                   equivalent LLMFI_TRACE)\n"
      "  --metrics FILE   export campaign/serve metrics; FILE ending in\n"
      "                   .prom or .txt selects Prometheus text, anything\n"
      "                   else JSON (env equivalent LLMFI_METRICS)\n"
      "  --progress       periodic progress line on stderr (done/total,\n"
      "                   trials/s, ETA, outcome tallies; env equivalent\n"
      "                   LLMFI_PROGRESS=1)\n"
      "  --recorder FILE  arm the fault flight recorder and dump its\n"
      "                   event timeline to FILE on exit; an anomalous\n"
      "                   trial (SDC / unrecovered) snapshots early (env\n"
      "                   equivalent LLMFI_RECORDER)\n"
      "                   Observability never perturbs results: outputs\n"
      "                   are byte-identical with these on or off.\n");
}

bool parse_args(int argc, char** argv, CliArgs& args) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const char* v = nullptr;
    if (a == "--help" || a == "-h") {
      args.help = true;
    } else if (a == "--list") {
      args.list = true;
    } else if (a == "--csv") {
      args.csv = true;
    } else if (a == "--router-only") {
      args.router_only = true;
    } else if (a == "--direct") {
      args.direct = true;
    } else if (a == "--model" && (v = need_value(i))) {
      args.model = v;
    } else if (a == "--dataset" && (v = need_value(i))) {
      args.dataset = v;
    } else if ((a == "--fault" || a == "--fault-model") &&
               (v = need_value(i))) {
      args.fault = v;
    } else if (a == "--dtype" && (v = need_value(i))) {
      args.dtype = v;
    } else if (a == "--trials" && (v = need_value(i))) {
      args.trials = std::atoi(v);
    } else if (a == "--inputs" && (v = need_value(i))) {
      args.inputs = std::atoi(v);
    } else if (a == "--beams" && (v = need_value(i))) {
      args.beams = std::atoi(v);
    } else if (a == "--threads" && (v = need_value(i))) {
      args.threads = std::atoi(v);
    } else if (a == "--batch" && (v = need_value(i))) {
      args.batch = std::atoi(v);
    } else if (a == "--tp" && (v = need_value(i))) {
      args.tp = std::atoi(v);
    } else if (a == "--kv-pages" && (v = need_value(i))) {
      args.kv_pages = std::atoi(v);
    } else if (a == "--seed" && (v = need_value(i))) {
      args.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (a == "--detector" && (v = need_value(i))) {
      args.detector = v;
    } else if (a == "--recovery") {
      args.recovery = true;
    } else if (a == "--no-prefix-fork") {
      args.prefix_fork = false;
    } else if (a == "--retries" && (v = need_value(i))) {
      args.retries = std::atoi(v);
    } else if (a == "--trace" && (v = need_value(i))) {
      args.trace_file = v;
    } else if (a == "--metrics" && (v = need_value(i))) {
      args.metrics_file = v;
    } else if (a == "--recorder" && (v = need_value(i))) {
      args.recorder_file = v;
    } else if (a == "--progress") {
      args.progress = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!parse_args(argc, argv, args)) {
    print_usage();
    return 2;
  }
  if (args.help) {
    print_usage();
    return 0;
  }
  if (args.list) {
    std::printf("models:\n");
    for (const auto& m : eval::Zoo::model_names()) {
      std::printf("  %s\n", m.c_str());
    }
    std::printf("datasets:\n");
    for (const auto& spec : eval::all_workloads()) {
      std::printf("  %-16s (%s)\n", spec.dataset.c_str(),
                  spec.style == data::TaskStyle::MultipleChoice
                      ? "multiple-choice"
                      : "generative");
    }
    return 0;
  }
  if (args.trials <= 0 || args.inputs <= 0 || args.beams <= 0 ||
      args.threads <= 0 || args.batch <= 0 || args.tp <= 0 ||
      args.retries < 0 || args.kv_pages < 0) {
    std::fprintf(stderr,
                 "trials/inputs/beams/threads/batch/tp must be positive "
                 "(kv-pages >= 0)\n");
    return 2;
  }
  if (args.detector != "none" && args.detector != "range" &&
      args.detector != "checksum" && args.detector != "stack") {
    std::fprintf(stderr,
                 "--detector must be none, range, checksum, or stack\n");
    return 2;
  }

  // Arm observability before the campaign: flags win, env fills gaps
  // (LLMFI_TRACE / LLMFI_METRICS). Neither perturbs results.
  obs::EnvConfig obs_cfg = obs::init_from_env();
  if (!args.trace_file.empty()) {
    obs_cfg.trace_path = args.trace_file;
    obs::trace_start();
  }
  if (!args.metrics_file.empty()) {
    obs_cfg.metrics_path = args.metrics_file;
    obs::metrics_start();
  }
  if (!args.recorder_file.empty()) {
    obs_cfg.recorder_path = args.recorder_file;
    obs::recorder_start();
    obs::recorder_set_dump_path(args.recorder_file);
  }

  try {
    eval::Zoo zoo;
    const auto& spec = eval::workload(args.dataset);
    eval::CampaignConfig cfg;
    cfg.fault = core::parse_fault_model(args.fault);
    cfg.trials = args.trials;
    cfg.n_inputs = args.inputs;
    cfg.seed = args.seed;
    cfg.threads = args.threads;
    cfg.batch = args.batch;
    cfg.tp = args.tp;
    cfg.kv_pages = args.kv_pages;
    cfg.run.gen.num_beams = args.beams;
    cfg.run.direct_prompt = args.direct;
    cfg.detection.range =
        args.detector == "range" || args.detector == "stack";
    cfg.detection.checksum =
        args.detector == "checksum" || args.detector == "stack";
    cfg.detection.recover = args.recovery;
    cfg.detection.max_retries = args.retries;
    cfg.prefix_fork = args.prefix_fork;
    cfg.progress = args.progress;
    if (args.router_only) {
      cfg.layer_filter = [](const nn::LinearId& id) {
        return id.kind == nn::LayerKind::Router;
      };
    }
    const auto prec =
        model::PrecisionConfig::for_dtype(num::parse_dtype(args.dtype));

    const auto r = eval::run_campaign(zoo, args.model, prec, spec, cfg);

    report::Table t(args.csv ? "" : "llmfi campaign: " + args.model + " / " +
                                        args.dataset + " / " + args.fault +
                                        " / " + args.dtype);
    t.header({"metric", "baseline", "faulty", "normalized", "ci_lo",
              "ci_hi"});
    for (const auto& [name, acc] : r.baseline_metrics) {
      const auto norm = r.normalized(name);
      t.row({name, report::fmt(acc.mean()), report::fmt(r.faulty_mean(name)),
             report::fmt(norm.value), report::fmt(norm.lo),
             report::fmt(norm.hi)});
    }
    if (args.csv) {
      t.print_csv(std::cout);
    } else {
      t.print(std::cout);
      std::printf("outcomes: masked %d, sdc-subtle %d, sdc-distorted %d "
                  "(SDC rate %.2f%%)\n",
                  r.masked, r.sdc_subtle, r.sdc_distorted,
                  100.0 * r.sdc_rate());
      if (cfg.detection.enabled()) {
        std::printf(
            "detection: %d/%d trials flagged, recovered %d, unrecovered %d, "
            "baseline false positives %d/%d\n",
            r.trials_detected, r.trials(), r.detected_recovered,
            r.detected_unrecovered, r.baseline_false_positives, cfg.n_inputs);
        std::printf("recovery overhead: %lld extra passes over %lld "
                    "(%.2f%% per-pass)\n",
                    r.recovery_passes, r.faulty_passes,
                    r.faulty_passes > 0
                        ? 100.0 * static_cast<double>(r.recovery_passes) /
                              static_cast<double>(r.faulty_passes)
                        : 0.0);
      }
      if (r.serve_stats.active) {
        std::printf(
            "serve: admitted %llu (forked %llu), completed %llu, "
            "backfills %llu, mean batch occupancy %.2f\n",
            static_cast<unsigned long long>(r.serve_stats.admitted),
            static_cast<unsigned long long>(r.serve_stats.forked_admissions),
            static_cast<unsigned long long>(r.serve_stats.completed),
            static_cast<unsigned long long>(r.serve_stats.backfills),
            r.serve_stats.mean_batch_occupancy());
      }
      std::printf("runtime: %.1fs (%.1f ms/trial)\n", r.total_runtime_sec,
                  1000.0 * r.total_runtime_sec / cfg.trials);
    }
    obs::write_outputs(obs_cfg);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
