// llmfi_serve — HTTP/SSE streaming inference server (DESIGN.md §15).
//
// Wraps the continuous-batching scheduler in the epoll front-end:
// POST /v1/completions streams tokens back as Server-Sent Events,
// GET /metrics serves the obs Prometheus registry, GET /healthz reports
// occupancy and queue depth, and SIGTERM/SIGINT drain gracefully
// (in-flight streams finish, new work gets 503).
//
//   llmfi_serve --model qilin --port 8080 --batch 4 --kv-pages 64
//   llmfi_serve --port 0                  # ephemeral; port on stdout
//   llmfi_serve --fault 1bit-comp --fault-rate 0.3 --detector checksum
//
// Every streamed token is bit-identical to a single-sequence greedy
// gen::generate() of the same prompt, whatever --batch is — the loadgen
// verifies exactly that. Fault flags inject per-request faults under
// live load; serving supports the computational models (1bit-comp,
// 2bits-comp) per request plus 2bits-mem as one server-lifetime weight
// corruption. kv-bit and tp-* need per-row cache/shard hooks the
// batched engine does not route, so serving rejects them.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "core/detector.h"
#include "core/injector.h"
#include "eval/model_zoo.h"
#include "eval/runner.h"
#include "eval/workloads.h"
#include "net/server.h"
#include "obs/obs.h"
#include "serve/scheduler.h"
#include "tensor/kernels.h"

using namespace llmfi;

namespace {

struct CliArgs {
  std::string model = "qilin";
  std::string dataset = "gsm8k-syn";
  std::string dtype = "bf16";
  std::string host = "127.0.0.1";
  int port = 8080;
  int batch = 4;
  int tp = 1;
  int kv_pages = 0;
  int max_new = 64;  // server-side cap and default budget
  std::string fault = "none";
  double fault_rate = 1.0;
  std::string detector = "none";  // none | range | checksum | stack
  std::uint64_t seed = 2024;
  bool help = false;
  std::string trace_file;
  std::string metrics_file;
  // Flight recorder (on by default — cheap enough to leave on) and its
  // anomaly/fatal dump path.
  bool recorder = true;
  std::string recorder_dump = "llmfi_serve_flight.json";
  // SLO thresholds feeding the burn-rate gauges on /metrics.
  double slo_ttft_ms = 500.0;
  double slo_gap_ms = 250.0;
  double slo_objective = 0.99;
};

void print_usage() {
  std::printf(
      "usage: llmfi_serve [options]\n"
      "  --model NAME      zoo model (default qilin)\n"
      "  --dataset NAME    workload backing /metrics profiling + text\n"
      "                    prompts (default gsm8k-syn; generative only)\n"
      "  --dtype D         fp32 | fp16 | bf16 | int8 | int4 (default bf16)\n"
      "  --host ADDR       bind address (default 127.0.0.1)\n"
      "  --port N          listen port; 0 binds an ephemeral port and\n"
      "                    prints it on stdout (default 8080)\n"
      "  --batch N         scheduler slots (default 4)\n"
      "  --tp N            tensor-parallel shards per forward pass\n"
      "                    (default 1; outputs identical for any value)\n"
      "  --kv-pages N      shared paged-KV pool; 0 = contiguous slots\n"
      "                    (default). Requests the pool cannot cover wait\n"
      "                    in queue (DESIGN.md §12)\n"
      "  --max-new N       per-request token budget cap and default\n"
      "                    (default 64)\n"
      "  --fault MODEL     none | 1bit-comp | 2bits-comp | 2bits-mem —\n"
      "                    inject faults under live load. Comp models\n"
      "                    sample a fresh per-request fault; 2bits-mem\n"
      "                    corrupts one weight for the server's lifetime.\n"
      "                    kv-bit / tp-* are not routable per-request in\n"
      "                    the batched engine and are rejected\n"
      "  --fault-rate P    fraction of requests that get a comp fault\n"
      "                    (default 1.0)\n"
      "  --detector D      none | range | checksum | stack — per-request\n"
      "                    online detection; verdict rides the SSE done\n"
      "                    event as \"detector\"\n"
      "  --seed N          fault-sampling seed (default 2024)\n"
      "  --trace FILE      Chrome trace-event JSON (env LLMFI_TRACE)\n"
      "  --metrics FILE    metrics export on exit; /metrics serves the\n"
      "                    live registry regardless (env LLMFI_METRICS)\n"
      "  --no-recorder     disable the fault flight recorder (on by\n"
      "                    default; GET /v1/requests/<id> serves per-\n"
      "                    request timelines while it runs)\n"
      "  --recorder-dump F anomaly/fatal-signal dump file (default\n"
      "                    llmfi_serve_flight.json)\n"
      "  --slo-ttft MS     TTFT SLO for the burn-rate gauges (default\n"
      "                    500)\n"
      "  --slo-gap MS      inter-token-gap SLO (default 250)\n"
      "  --slo-objective P attainment objective in [0,1) (default 0.99)\n");
}

bool parse_args(int argc, char** argv, CliArgs& args) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const char* v = nullptr;
    if (a == "--help" || a == "-h") {
      args.help = true;
    } else if (a == "--model" && (v = need_value(i))) {
      args.model = v;
    } else if (a == "--dataset" && (v = need_value(i))) {
      args.dataset = v;
    } else if (a == "--dtype" && (v = need_value(i))) {
      args.dtype = v;
    } else if (a == "--host" && (v = need_value(i))) {
      args.host = v;
    } else if (a == "--port" && (v = need_value(i))) {
      args.port = std::atoi(v);
    } else if (a == "--batch" && (v = need_value(i))) {
      args.batch = std::atoi(v);
    } else if (a == "--tp" && (v = need_value(i))) {
      args.tp = std::atoi(v);
    } else if (a == "--kv-pages" && (v = need_value(i))) {
      args.kv_pages = std::atoi(v);
    } else if (a == "--max-new" && (v = need_value(i))) {
      args.max_new = std::atoi(v);
    } else if ((a == "--fault" || a == "--fault-model") &&
               (v = need_value(i))) {
      args.fault = v;
    } else if (a == "--fault-rate" && (v = need_value(i))) {
      args.fault_rate = std::atof(v);
    } else if (a == "--detector" && (v = need_value(i))) {
      args.detector = v;
    } else if (a == "--seed" && (v = need_value(i))) {
      args.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (a == "--trace" && (v = need_value(i))) {
      args.trace_file = v;
    } else if (a == "--metrics" && (v = need_value(i))) {
      args.metrics_file = v;
    } else if (a == "--no-recorder") {
      args.recorder = false;
    } else if (a == "--recorder-dump" && (v = need_value(i))) {
      args.recorder_dump = v;
    } else if (a == "--slo-ttft" && (v = need_value(i))) {
      args.slo_ttft_ms = std::atof(v);
    } else if (a == "--slo-gap" && (v = need_value(i))) {
      args.slo_gap_ms = std::atof(v);
    } else if (a == "--slo-objective" && (v = need_value(i))) {
      args.slo_objective = std::atof(v);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

// Per-request fault/detector context. Construction and every callback
// run on the server's engine thread, so the shared RNG needs no lock.
struct ServeHookCtx : net::RequestHookCtx {
  std::optional<core::ComputationalFaultInjector> injector;
  std::optional<core::ActivationDetector> range;
  std::optional<core::ChecksumDetector> checksum;
  std::optional<core::DetectorStack> stack;
  nn::LinearHook* head = nullptr;

  nn::LinearHook* linear_hook() override { return head; }

  std::string on_complete(const serve::Completion& c) override {
    const nn::DetectorHook* det =
        stack ? static_cast<const nn::DetectorHook*>(&*stack)
              : (range ? static_cast<const nn::DetectorHook*>(&*range)
                       : (checksum
                              ? static_cast<const nn::DetectorHook*>(&*checksum)
                              : nullptr));
    if (det == nullptr) return {};
    const bool tripped = det->triggered();
    // Retirement runs under the request's ContextScope, so the verdict
    // lands on the request's timeline. Serving has no in-flight
    // recovery: a trip is final (a0 = 0, tripped-unrecovered).
    obs::record_event(obs::RecType::DetectorVerdict, c.passes,
                      tripped ? 0 : 1, tripped ? 1 : 0);
    if (!tripped) return "clean";
    obs::count("net_detector_trips_total");
    return std::string(det->name());
  }
};

net::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->request_drain();
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!parse_args(argc, argv, args)) {
    print_usage();
    return 2;
  }
  if (args.help) {
    print_usage();
    return 0;
  }
  if (args.batch <= 0 || args.tp <= 0 || args.max_new <= 0 ||
      args.kv_pages < 0 || args.port < 0 || args.fault_rate < 0.0 ||
      args.fault_rate > 1.0) {
    std::fprintf(stderr,
                 "batch/tp/max-new must be positive, kv-pages/port >= 0, "
                 "fault-rate in [0,1]\n");
    return 2;
  }
  if (args.detector != "none" && args.detector != "range" &&
      args.detector != "checksum" && args.detector != "stack") {
    std::fprintf(stderr, "--detector must be none, range, checksum, stack\n");
    return 2;
  }
  if (args.slo_ttft_ms <= 0.0 || args.slo_gap_ms <= 0.0 ||
      args.slo_objective < 0.0 || args.slo_objective >= 1.0) {
    std::fprintf(stderr,
                 "slo-ttft/slo-gap must be positive, slo-objective in "
                 "[0,1)\n");
    return 2;
  }

  obs::EnvConfig obs_cfg = obs::init_from_env();
  if (!args.trace_file.empty()) {
    obs_cfg.trace_path = args.trace_file;
    obs::trace_start();
  }
  if (!args.metrics_file.empty()) obs_cfg.metrics_path = args.metrics_file;
  // /metrics must serve live data, so the registry records regardless of
  // whether an export path was given.
  obs::metrics_start();
  // Serve-tier latency buckets: the default latency grid tops out too
  // early for multi-second queue+decode tails and is too coarse below a
  // millisecond; rebinding before any sample lands keeps the override
  // cheap (empty histograms swap bounds in place).
  for (const char* h :
       {"serve_ttft_us", "serve_decode_token_us", "serve_queue_wait_us"}) {
    obs::Registry::global().set_histogram_bounds(
        h, obs::serve_latency_us_buckets());
  }
  // Flight recorder: on by default (its disabled-path cost is one atomic
  // load; enabled it writes to thread-private rings only). LLMFI_RECORDER
  // may have armed it already with its own dump path — the flag wins.
  if (args.recorder) {
    obs::recorder_start();
    obs::recorder_set_dump_path(args.recorder_dump);
    obs::install_fatal_dump_handler(args.recorder_dump.c_str());
  }
  // SLO burn-rate monitor: armed only by serving front-ends, folded into
  // slo_* gauges at each /metrics scrape.
  obs::SloMonitor::global().configure(
      {args.slo_ttft_ms, args.slo_gap_ms, args.slo_objective});
  obs::SloMonitor::global().enable();

  try {
    eval::Zoo zoo;
    const auto& spec = eval::workload(args.dataset);
    if (spec.style == data::TaskStyle::MultipleChoice) {
      std::fprintf(stderr, "%s is multiple-choice; serving needs generative\n",
                   args.dataset.c_str());
      return 2;
    }
    const auto prec =
        model::PrecisionConfig::for_dtype(num::parse_dtype(args.dtype));
    model::InferenceModel engine(zoo.get(args.model), prec);
    engine.set_tensor_parallel(args.tp);
    const auto& vocab = zoo.vocab();
    const auto& eval_set = zoo.task(spec.kind).eval;

    // Fault plumbing. Comp models sample per request in the hook
    // factory; 2bits-mem corrupts one weight for the whole lifetime.
    std::optional<core::FaultModel> fault;
    if (args.fault != "none") {
      fault = core::parse_fault_model(args.fault);
      if (core::is_kv_fault(*fault) || core::is_tp_fault(*fault)) {
        std::fprintf(stderr,
                     "--fault %s is not routable per-request in the batched "
                     "engine; use 1bit-comp, 2bits-comp or 2bits-mem\n",
                     args.fault.c_str());
        return 2;
      }
    }
    num::Rng rng(args.seed);
    std::mt19937_64 rate_rng(args.seed ^ 0x9e3779b97f4a7c15ull);
    std::unique_ptr<core::WeightCorruption> mem_fault;
    if (fault && core::is_memory_fault(*fault)) {
      core::SamplerScope scope;
      scope.max_passes = 1;
      const core::FaultPlan plan =
          core::sample_fault(*fault, engine, scope, rng);
      mem_fault = std::make_unique<core::WeightCorruption>(engine, plan);
      std::printf("llmfi_serve: 2bits-mem corruption armed (%.6g -> %.6g)\n",
                  mem_fault->old_value(), mem_fault->new_value());
    }

    // Detector profiles: collected once, fault-free, before serving.
    core::ActivationProfile act_profile;
    core::ChecksumProfile sum_profile;
    const bool want_range =
        args.detector == "range" || args.detector == "stack";
    const bool want_checksum =
        args.detector == "checksum" || args.detector == "stack";
    if (want_range || want_checksum) {
      std::vector<std::string> prompts;
      for (size_t i = 0; i < eval_set.size() && i < 10; ++i) {
        prompts.push_back(eval_set[i].prompt);
      }
      if (want_range) {
        act_profile = core::profile_activations(engine, vocab, prompts);
      }
      if (want_checksum) {
        sum_profile = core::profile_checksums(engine, vocab, prompts);
      }
    }

    net::HookFactory factory;
    if ((fault && !core::is_memory_fault(*fault)) || want_range ||
        want_checksum) {
      const bool comp_fault = fault && !core::is_memory_fault(*fault);
      factory = [&, comp_fault](std::uint64_t) {
        auto ctx = std::make_unique<ServeHookCtx>();
        if (comp_fault &&
            std::uniform_real_distribution<double>(0.0, 1.0)(rate_rng) <
                args.fault_rate) {
          core::SamplerScope scope;
          scope.max_passes = args.max_new;
          ctx->injector.emplace(core::sample_fault(*fault, engine, scope, rng),
                                engine.precision().act_dtype);
          obs::count("net_faults_injected_total");
        }
        nn::LinearHook* tail = ctx->injector ? &*ctx->injector : nullptr;
        if (want_range && want_checksum) {
          ctx->range.emplace(act_profile);
          ctx->checksum.emplace(sum_profile);
          ctx->stack.emplace(
              std::vector<nn::DetectorHook*>{&*ctx->range, &*ctx->checksum},
              tail);
          ctx->head = &*ctx->stack;
        } else if (want_range) {
          ctx->range.emplace(act_profile, tail);
          ctx->head = &*ctx->range;
        } else if (want_checksum) {
          ctx->checksum.emplace(sum_profile, tail);
          ctx->head = &*ctx->checksum;
        } else {
          ctx->head = tail;
        }
        return ctx;
      };
    }

    std::shared_ptr<nn::PagePool> pool;
    if (args.kv_pages > 0) {
      pool = std::make_shared<nn::PagePool>(args.kv_pages,
                                            nn::PagePool::kDefaultPageRows,
                                            engine.config().d_model);
    }
    serve::BatchEngine bengine(engine, args.batch, pool);
    serve::Scheduler sched(bengine);

    net::ServerConfig cfg;
    cfg.host = args.host;
    cfg.port = args.port;
    cfg.max_new_tokens = args.max_new;
    // GET /varz: the build/config snapshot a postmortem joins against —
    // all values are fixed at startup, so the body is precomputed.
    std::string varz_body = "{\"model\":\"" + args.model + "\",\"dtype\":\"" +
                            args.dtype + "\",\"dataset\":\"" + args.dataset +
                            "\",\"batch\":" + std::to_string(args.batch) +
                            ",\"tp\":" + std::to_string(args.tp) +
                            ",\"kv_pages\":" + std::to_string(args.kv_pages) +
                            ",\"max_new_tokens\":" +
                            std::to_string(args.max_new) +
                            ",\"kernel_tier\":\"" +
                            tn::kernel_tier_name(tn::kernel_tier()) +
                            "\",\"fault\":\"" + args.fault +
                            "\",\"detector\":\"" + args.detector +
                            "\",\"recorder\":" +
                            (args.recorder ? "true" : "false");
    {
      char slo[128];
      std::snprintf(slo, sizeof(slo),
                    ",\"slo\":{\"ttft_ms\":%g,\"token_gap_ms\":%g,"
                    "\"objective\":%g}}",
                    args.slo_ttft_ms, args.slo_gap_ms, args.slo_objective);
      varz_body += slo;
    }
    net::Server server(cfg, {sched, vocab, std::min(args.max_new, 32),
                             std::move(factory),
                             [varz_body] { return varz_body; }});
    server.start();
    g_server = &server;
    struct sigaction sa{};
    sa.sa_handler = on_signal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);

    // Scripts (CI, run_benches.sh) parse this line for the bound port.
    std::printf("llmfi_serve listening on %s:%d\n", args.host.c_str(),
                server.port());
    std::fflush(stdout);
    server.wait();
    g_server = nullptr;

    const auto& es = bengine.stats();
    const auto& ss = sched.stats();
    const auto& ns = server.stats();
    std::printf("llmfi_serve drained: %llu completed, %llu cancelled, "
                "%llu tokens; http %llu reqs (%llu bad, %llu 503), "
                "%llu disconnect cancels\n",
                static_cast<unsigned long long>(ss.completed),
                static_cast<unsigned long long>(ss.cancelled),
                static_cast<unsigned long long>(es.generated_tokens),
                static_cast<unsigned long long>(ns.requests.load()),
                static_cast<unsigned long long>(ns.bad_requests.load()),
                static_cast<unsigned long long>(ns.rejected_draining.load()),
                static_cast<unsigned long long>(ns.disconnect_cancels.load()));
    if (pool) {
      std::printf("kv pages: %d total, %d free\n", pool->n_pages(),
                  pool->free_pages());
    }
    obs::write_outputs(obs_cfg);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
