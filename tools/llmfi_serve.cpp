// llmfi_serve — continuous-batching inference demo.
//
// Feeds a workload's evaluation prompts through the serve::Scheduler,
// streaming each completion as it retires and finishing with the
// engine/scheduler counters, so the batched path (DESIGN.md §10) can be
// exercised and eyeballed outside a campaign:
//
//   llmfi_serve --model qilin --dataset gsm8k-syn --batch 4 --n 12
//   llmfi_serve --dtype fp16 --max-new 64
//
// Every token printed is bit-identical to a single-sequence greedy
// gen::generate() of the same prompt, whatever --batch is.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "eval/model_zoo.h"
#include "eval/runner.h"
#include "eval/workloads.h"
#include "obs/obs.h"
#include "serve/scheduler.h"

using namespace llmfi;

namespace {

struct CliArgs {
  std::string model = "qilin";
  std::string dataset = "gsm8k-syn";
  std::string dtype = "bf16";
  int batch = 4;
  int tp = 1;
  int kv_pages = 0;
  int max_new = 40;
  int n = 8;  // prompts taken from the head of the eval set
  bool help = false;
  std::string trace_file;    // --trace FILE
  std::string metrics_file;  // --metrics FILE
};

void print_usage() {
  std::printf(
      "usage: llmfi_serve [options]\n"
      "  --model NAME    zoo model (default qilin)\n"
      "  --dataset NAME  workload whose eval prompts to serve (default\n"
      "                  gsm8k-syn; must be a generative workload)\n"
      "  --dtype D       fp32 | fp16 | bf16 | int8 | int4 (default bf16)\n"
      "  --batch N       scheduler slots, i.e. sequences decoding per\n"
      "                  forward_batch pass (default 4)\n"
      "  --tp N          tensor-parallel shards inside every forward pass\n"
      "                  (default 1; tokens are byte-identical for any\n"
      "                  value — DESIGN.md §14; LLMFI_TP has no effect\n"
      "                  here, serve takes the flag only)\n"
      "  --kv-pages N    back the slot KV caches with a shared N-page pool\n"
      "                  (DESIGN.md §12); when the pool cannot cover a\n"
      "                  request's worst case the scheduler queues it until\n"
      "                  retiring sequences release pages. 0 = contiguous\n"
      "                  slots (default); outputs are identical either way\n"
      "  --max-new N     token budget per request (default 40)\n"
      "  --n N           number of prompts to submit (default 8)\n"
      "  --trace FILE    Chrome trace-event JSON of admission/decode spans\n"
      "                  (Perfetto-loadable; env LLMFI_TRACE)\n"
      "  --metrics FILE  export serve latency metrics — queue wait, TTFT,\n"
      "                  per-token decode, batch occupancy; .prom/.txt gets\n"
      "                  Prometheus text, else JSON (env LLMFI_METRICS)\n");
}

bool parse_args(int argc, char** argv, CliArgs& args) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const char* v = nullptr;
    if (a == "--help" || a == "-h") {
      args.help = true;
    } else if (a == "--model" && (v = need_value(i))) {
      args.model = v;
    } else if (a == "--dataset" && (v = need_value(i))) {
      args.dataset = v;
    } else if (a == "--dtype" && (v = need_value(i))) {
      args.dtype = v;
    } else if (a == "--batch" && (v = need_value(i))) {
      args.batch = std::atoi(v);
    } else if (a == "--tp" && (v = need_value(i))) {
      args.tp = std::atoi(v);
    } else if (a == "--kv-pages" && (v = need_value(i))) {
      args.kv_pages = std::atoi(v);
    } else if (a == "--max-new" && (v = need_value(i))) {
      args.max_new = std::atoi(v);
    } else if (a == "--n" && (v = need_value(i))) {
      args.n = std::atoi(v);
    } else if (a == "--trace" && (v = need_value(i))) {
      args.trace_file = v;
    } else if (a == "--metrics" && (v = need_value(i))) {
      args.metrics_file = v;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!parse_args(argc, argv, args)) {
    print_usage();
    return 2;
  }
  if (args.help) {
    print_usage();
    return 0;
  }
  if (args.batch <= 0 || args.tp <= 0 || args.max_new < 0 || args.n <= 0 ||
      args.kv_pages < 0) {
    std::fprintf(stderr,
                 "batch/tp/n must be positive, max-new/kv-pages >= 0\n");
    return 2;
  }

  // Arm observability before serving: flags win, env fills gaps.
  obs::EnvConfig obs_cfg = obs::init_from_env();
  if (!args.trace_file.empty()) {
    obs_cfg.trace_path = args.trace_file;
    obs::trace_start();
  }
  if (!args.metrics_file.empty()) {
    obs_cfg.metrics_path = args.metrics_file;
    obs::metrics_start();
  }

  try {
    eval::Zoo zoo;
    const auto& spec = eval::workload(args.dataset);
    if (spec.style == data::TaskStyle::MultipleChoice) {
      std::fprintf(stderr,
                   "%s is a multiple-choice workload; serving needs a "
                   "generative one\n",
                   args.dataset.c_str());
      return 2;
    }
    const auto prec =
        model::PrecisionConfig::for_dtype(num::parse_dtype(args.dtype));
    model::InferenceModel engine(zoo.get(args.model), prec);
    engine.set_tensor_parallel(args.tp);
    const auto& vocab = zoo.vocab();
    const auto& eval_set = zoo.task(spec.kind).eval;
    const int n = std::min<int>(args.n, static_cast<int>(eval_set.size()));

    // A page pool (when requested) makes the scheduler's page-budget
    // gate live: requests the pool cannot cover wait in queue instead of
    // dying of pool exhaustion mid-decode.
    std::shared_ptr<nn::PagePool> pool;
    if (args.kv_pages > 0) {
      pool = std::make_shared<nn::PagePool>(args.kv_pages,
                                            nn::PagePool::kDefaultPageRows,
                                            engine.config().d_model);
    }
    serve::BatchEngine bengine(engine, args.batch, pool);
    serve::Scheduler sched(bengine);
    for (int i = 0; i < n; ++i) {
      serve::Request req;
      req.id = static_cast<std::uint64_t>(i);
      req.prompt = eval::build_prompt(vocab, eval_set[static_cast<size_t>(i)],
                                      /*direct_prompt=*/false);
      req.max_new_tokens = args.max_new;
      req.eos = vocab.eos();
      // Stream each completion the moment its request retires — possibly
      // out of submission order, which is the point of the demo.
      req.on_done = [&vocab](const serve::Completion& c) {
        std::printf("[#%llu] %s%s\n",
                    static_cast<unsigned long long>(c.id),
                    vocab.decode(c.tokens).c_str(),
                    c.hit_max_tokens ? " ..." : "");
      };
      sched.submit(std::move(req));
    }
    sched.run();

    const auto& es = bengine.stats();
    const auto& ss = sched.stats();
    const double rows_per_batch =
        es.decode_batches > 0 ? static_cast<double>(es.decode_rows) /
                                    static_cast<double>(es.decode_batches)
                              : 0.0;
    std::printf("\n--- scheduler ---\n");
    std::printf("submitted        %llu\n",
                static_cast<unsigned long long>(ss.submitted));
    std::printf("completed        %llu\n",
                static_cast<unsigned long long>(ss.completed));
    std::printf("backfills        %llu\n",
                static_cast<unsigned long long>(ss.backfills));
    if (pool) {
      std::printf("deferred admits  %llu (kv pages: %d total, %d free)\n",
                  static_cast<unsigned long long>(ss.deferred_admissions),
                  pool->n_pages(), pool->free_pages());
    }
    std::printf("--- engine ---\n");
    std::printf("admission passes %llu\n",
                static_cast<unsigned long long>(es.admission_passes));
    std::printf("decode batches   %llu\n",
                static_cast<unsigned long long>(es.decode_batches));
    std::printf("decode rows      %llu (%.2f rows/batch, capacity %d)\n",
                static_cast<unsigned long long>(es.decode_rows),
                rows_per_batch, bengine.capacity());
    std::printf("max active       %d\n", es.max_active);
    std::printf("generated tokens %llu\n",
                static_cast<unsigned long long>(es.generated_tokens));
    if (obs::metrics_enabled()) {
      // Latency summary straight from the metrics registry — the same
      // histograms --metrics exports.
      auto& reg = obs::Registry::global();
      std::printf("--- latency (us, bucket-interpolated) ---\n");
      for (const char* name :
           {"serve_queue_wait_us", "serve_ttft_us", "serve_decode_token_us"}) {
        auto& h = reg.histogram(name, obs::latency_us_buckets());
        if (h.count() == 0) continue;
        std::printf("%-22s p50 %.0f  p95 %.0f  p99 %.0f  mean %.0f  (n=%llu)\n",
                    name, h.quantile(0.50), h.quantile(0.95),
                    h.quantile(0.99), h.mean(),
                    static_cast<unsigned long long>(h.count()));
      }
      auto& occ =
          reg.histogram("serve_batch_occupancy", obs::small_count_buckets());
      if (occ.count() > 0) {
        std::printf("%-22s mean %.2f rows/batch\n", "serve_batch_occupancy",
                    occ.mean());
      }
    }
    obs::write_outputs(obs_cfg);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
