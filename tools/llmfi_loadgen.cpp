// llmfi_loadgen — closed/open-loop load generator for llmfi_serve.
//
// Drives /v1/completions on a running server with N concurrent
// sessions, verifies every streamed token against the sequential
// gen::generate() oracle (computed locally with the same model/dtype),
// and reports SLO-tracked tail latency: TTFT / per-token gap / e2e
// p50-p95-p99, SLO attainment, and goodput.
//
//   llmfi_loadgen --port 8080 --mode closed --sessions 8 --requests 64
//   llmfi_loadgen --port 8080 --mode poisson --rate 24 --json out.json
//
// Exit code is nonzero on any identity mismatch, transport error, or
// incomplete stream — CI uses it as the loopback identity gate.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "eval/model_zoo.h"
#include "eval/runner.h"
#include "eval/workloads.h"
#include "gen/generate.h"
#include "net/client.h"
#include "net/loadgen.h"
#include "report/bench_meta.h"

using namespace llmfi;

namespace {

struct CliArgs {
  std::string host = "127.0.0.1";
  int port = 8080;
  std::string name = "loadgen";
  std::string mode = "closed";  // closed | poisson | bursty
  std::string model = "qilin";
  std::string dataset = "gsm8k-syn";
  std::string dtype = "bf16";
  int sessions = 8;
  int requests = 64;
  double rate = 32.0;
  double on_sec = 0.5;
  double off_sec = 0.5;
  int prompts = 8;
  int max_new = 16;
  double slo_ttft_ms = 500.0;
  double slo_token_ms = 250.0;
  std::uint64_t seed = 1234;
  bool verify = true;
  std::string json_path;
  bool help = false;
};

void print_usage() {
  std::printf(
      "usage: llmfi_loadgen [options]\n"
      "  --host ADDR       server address (default 127.0.0.1)\n"
      "  --port N          server port (default 8080)\n"
      "  --name S          arm name in the report (default loadgen)\n"
      "  --mode M          closed | poisson | bursty (default closed)\n"
      "  --model NAME      oracle model — must match the server's\n"
      "  --dataset NAME    oracle workload — must match the server's\n"
      "  --dtype D         oracle dtype — must match the server's\n"
      "  --sessions N      concurrent connections (default 8)\n"
      "  --requests N      total requests (default 64)\n"
      "  --rate HZ         open-loop arrival rate (default 32)\n"
      "  --on-sec S        bursty ON phase length (default 0.5)\n"
      "  --off-sec S       bursty OFF gap length (default 0.5)\n"
      "  --prompts N       distinct prompts cycled round-robin (default 8)\n"
      "  --max-new N       token budget per request (default 16)\n"
      "  --slo-ttft-ms X   per-request TTFT SLO (default 500)\n"
      "  --slo-token-ms X  per-request mean token-gap SLO (default 250)\n"
      "  --seed N          arrival-schedule seed (default 1234)\n"
      "  --no-verify       skip oracle identity verification\n"
      "  --json FILE       write the arm as a BENCH-format JSON log\n");
}

bool parse_args(int argc, char** argv, CliArgs& args) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const char* v = nullptr;
    if (a == "--help" || a == "-h") {
      args.help = true;
    } else if (a == "--host" && (v = need_value(i))) {
      args.host = v;
    } else if (a == "--port" && (v = need_value(i))) {
      args.port = std::atoi(v);
    } else if (a == "--name" && (v = need_value(i))) {
      args.name = v;
    } else if (a == "--mode" && (v = need_value(i))) {
      args.mode = v;
    } else if (a == "--model" && (v = need_value(i))) {
      args.model = v;
    } else if (a == "--dataset" && (v = need_value(i))) {
      args.dataset = v;
    } else if (a == "--dtype" && (v = need_value(i))) {
      args.dtype = v;
    } else if (a == "--sessions" && (v = need_value(i))) {
      args.sessions = std::atoi(v);
    } else if (a == "--requests" && (v = need_value(i))) {
      args.requests = std::atoi(v);
    } else if (a == "--rate" && (v = need_value(i))) {
      args.rate = std::atof(v);
    } else if (a == "--on-sec" && (v = need_value(i))) {
      args.on_sec = std::atof(v);
    } else if (a == "--off-sec" && (v = need_value(i))) {
      args.off_sec = std::atof(v);
    } else if (a == "--prompts" && (v = need_value(i))) {
      args.prompts = std::atoi(v);
    } else if (a == "--max-new" && (v = need_value(i))) {
      args.max_new = std::atoi(v);
    } else if (a == "--slo-ttft-ms" && (v = need_value(i))) {
      args.slo_ttft_ms = std::atof(v);
    } else if (a == "--slo-token-ms" && (v = need_value(i))) {
      args.slo_token_ms = std::atof(v);
    } else if (a == "--seed" && (v = need_value(i))) {
      args.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (a == "--no-verify") {
      args.verify = false;
    } else if (a == "--json" && (v = need_value(i))) {
      args.json_path = v;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

// Scrapes the server's /metrics and checks the SLO burn-rate math for
// internal consistency: for every (slo, window) gauge pair the scrape
// exposes, burn_rate must equal (1 - attainment) / (1 - objective) to
// within float-print precision. A server without the monitor armed
// exposes no slo_* gauges — that's a skip, not a failure. Returns false
// only on a genuine inconsistency.
bool check_burn_rate_sanity(const std::string& host, int port) {
  net::HttpClient client;
  if (!client.connect(host, port)) {
    std::fprintf(stderr, "burn-rate check: cannot connect\n");
    return false;
  }
  const auto resp = client.request("GET", "/metrics");
  if (!resp || resp->status != 200) {
    std::fprintf(stderr, "burn-rate check: /metrics scrape failed\n");
    return false;
  }
  double objective = -1.0;
  // label-tail ("{slo=...,window=...}") -> attainment / burn values.
  std::vector<std::pair<std::string, double>> attain, burn;
  std::istringstream lines(resp->body);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto sp = line.rfind(' ');
    if (sp == std::string::npos) continue;
    const std::string name = line.substr(0, sp);
    const double value = std::atof(line.c_str() + sp + 1);
    if (name == "slo_objective") {
      objective = value;
    } else if (name.rfind("slo_attainment{", 0) == 0) {
      attain.emplace_back(name.substr(15), value);
    } else if (name.rfind("slo_burn_rate{", 0) == 0) {
      burn.emplace_back(name.substr(14), value);
    }
  }
  if (objective < 0.0 || attain.empty()) {
    std::printf("burn-rate check: no slo_* gauges (monitor not armed); "
                "skipped\n");
    return true;
  }
  int checked = 0;
  for (const auto& [tail, a] : attain) {
    for (const auto& [btail, b] : burn) {
      if (btail != tail) continue;
      const double expect = (1.0 - a) / (1.0 - objective);
      // Gauges print with ~6 significant digits; burn rates reach
      // ~100x at objective 0.99, so allow absolute 1e-3.
      if (std::fabs(b - expect) > 1e-3) {
        std::fprintf(stderr,
                     "burn-rate check FAILED: %s burn %.6f != "
                     "(1-%.6f)/(1-%.6f) = %.6f\n",
                     tail.c_str(), b, a, objective, expect);
        return false;
      }
      ++checked;
    }
  }
  std::printf("burn-rate check: %d window gauges consistent "
              "(objective %.4f)\n",
              checked, objective);
  return checked > 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!parse_args(argc, argv, args)) {
    print_usage();
    return 2;
  }
  if (args.help) {
    print_usage();
    return 0;
  }
  if (args.sessions <= 0 || args.requests <= 0 || args.prompts <= 0 ||
      args.max_new <= 0 || args.port <= 0 || args.rate <= 0.0) {
    std::fprintf(stderr, "sessions/requests/prompts/max-new/port/rate must "
                         "be positive\n");
    return 2;
  }
  net::LoadArmConfig cfg;
  if (args.mode == "closed") {
    cfg.mode = net::ArrivalMode::Closed;
  } else if (args.mode == "poisson") {
    cfg.mode = net::ArrivalMode::Poisson;
  } else if (args.mode == "bursty") {
    cfg.mode = net::ArrivalMode::Bursty;
  } else {
    std::fprintf(stderr, "--mode must be closed, poisson, or bursty\n");
    return 2;
  }

  try {
    // Build the prompt set and (unless --no-verify) the sequential
    // oracle with the same model/dtype the server runs.
    eval::Zoo zoo;
    const auto& spec = eval::workload(args.dataset);
    const auto prec =
        model::PrecisionConfig::for_dtype(num::parse_dtype(args.dtype));
    model::InferenceModel engine(zoo.get(args.model), prec);
    const auto& vocab = zoo.vocab();
    const auto& eval_set = zoo.task(spec.kind).eval;
    const int n_prompts =
        std::min<int>(args.prompts, static_cast<int>(eval_set.size()));

    std::vector<net::LoadPrompt> prompts;
    for (int i = 0; i < n_prompts; ++i) {
      net::LoadPrompt p;
      p.ids = eval::build_prompt(vocab, eval_set[static_cast<size_t>(i)],
                                 /*direct_prompt=*/false);
      if (args.verify) {
        gen::GenerationConfig gcfg;
        gcfg.max_new_tokens = args.max_new;
        gcfg.eos = vocab.eos();
        p.expect = gen::generate(engine, p.ids, gcfg).tokens;
      }
      prompts.push_back(std::move(p));
    }

    cfg.name = args.name;
    cfg.sessions = args.sessions;
    cfg.requests = args.requests;
    cfg.rate_hz = args.rate;
    cfg.on_sec = args.on_sec;
    cfg.off_sec = args.off_sec;
    cfg.max_new_tokens = args.max_new;
    cfg.slo_ttft_ms = args.slo_ttft_ms;
    cfg.slo_token_ms = args.slo_token_ms;
    cfg.seed = args.seed;
    cfg.verify = args.verify;

    const net::LoadArmResult r =
        net::run_load_arm(args.host, args.port, prompts, cfg);
    std::printf("%s\n", r.json().c_str());

    if (!args.json_path.empty()) {
      std::ofstream out(args.json_path);
      out << "{\n  \"bench\": \"net_loadgen\",\n  \"meta\": "
          << report::bench_metadata(r.wall_sec).json() << ",\n  \"arms\": [\n"
          << "    " << r.json() << "\n  ]\n}\n";
    }

    if (r.mismatches > 0) {
      std::fprintf(stderr, "FAILED: %d identity mismatches\n", r.mismatches);
      return 1;
    }
    if (r.errors > 0 || r.completed != r.requests) {
      std::fprintf(stderr, "FAILED: %d/%d completed, %d errors\n",
                   r.completed, r.requests, r.errors);
      return 1;
    }
    // SLO burn-rate sanity: the gauges the server derived from this
    // arm's traffic must satisfy their own defining formula.
    if (!check_burn_rate_sanity(args.host, args.port)) {
      std::fprintf(stderr, "FAILED: burn-rate sanity check\n");
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
