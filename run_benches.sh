#!/bin/bash
# Final bench sweep at higher statistical power.
# LLMFI_NATIVE=1 rebuilds with -march=native -O3 first (machine-tuned
# numbers; leave unset for the portable default build).
set -u
cd "$(dirname "$0")"
if [ "${LLMFI_NATIVE:-0}" = "1" ]; then
  cmake -B build -S . -DLLMFI_NATIVE=ON
  cmake --build build -j
fi
export LLMFI_TRIALS=400 LLMFI_INPUTS=12
mkdir -p bench_logs
# Refuse to sweep a Debug build: bench/common.h's require_release_build
# makes every bench exit 3 when NDEBUG is unset (LLMFI_ALLOW_DEBUG_BENCH=1
# overrides). Probe once up front so the failure is one line here, not 28
# misleading log files.
if ! LLMFI_KERNEL_HARNESS=0 build/bench/micro_perf \
    --benchmark_filter='MatchesNoBenchmark' > /dev/null 2>&1; then
  echo "run_benches.sh: micro_perf probe failed — Debug build? Reconfigure" \
       "with -DCMAKE_BUILD_TYPE=Release (or LLMFI_ALLOW_DEBUG_BENCH=1)."
  exit 3
fi
failed=()
ran=0
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  name=$(basename "$b")
  case "$name" in *.cmake|CMakeFiles|CTestTestfile*) continue;; esac
  echo "=== $name ==="
  timeout 1800 "$b" > "bench_logs/$name.txt" 2>&1
  code=$?
  ran=$((ran + 1))
  echo "exit=$code $(date +%T)"
  if [ "$code" -ne 0 ]; then
    failed+=("$name (exit $code)")
  fi
done
# Two-process serving smoke: real llmfi_serve over a socket (the
# fig_net_latency bench is in-process), loadgen identity gate against
# it, then a graceful SIGTERM drain. Skipped if the tools were not
# built.
if [ -x build/tools/llmfi_serve ] && [ -x build/tools/llmfi_loadgen ]; then
  echo "=== net_loadgen_smoke ==="
  build/tools/llmfi_serve --port 0 --batch 4 --kv-pages 128 \
      > bench_logs/net_serve_smoke.txt 2>&1 &
  serve_pid=$!
  port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\)$/\1/p' \
           bench_logs/net_serve_smoke.txt 2>/dev/null)
    [ -n "$port" ] && break
    kill -0 "$serve_pid" 2>/dev/null || break
    sleep 0.2
  done
  if [ -n "$port" ]; then
    timeout 600 build/tools/llmfi_loadgen --port "$port" --mode closed \
        --sessions 8 --requests 64 \
        > bench_logs/net_loadgen_smoke.txt 2>&1
    code=$?
  else
    echo "run_benches.sh: llmfi_serve never reported a port" \
         >> bench_logs/net_loadgen_smoke.txt
    code=1
  fi
  kill -TERM "$serve_pid" 2>/dev/null
  wait "$serve_pid"
  serve_code=$?
  ran=$((ran + 1))
  echo "exit=$code serve_exit=$serve_code $(date +%T)"
  if [ "$code" -ne 0 ] || [ "$serve_code" -ne 0 ]; then
    failed+=("net_loadgen_smoke (loadgen $code, serve $serve_code)")
  fi
fi
# Benches use their exit code as a self-check (identity cross-checks,
# expected-shape gates); surface any failure instead of burying it in
# the per-bench logs.
if [ "${#failed[@]}" -gt 0 ]; then
  echo "FAILED (${#failed[@]}/$ran):"
  printf '  %s\n' "${failed[@]}"
  exit 1
fi
echo "ALL_DONE ($ran benches)"
