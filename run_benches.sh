#!/bin/bash
# Final bench sweep at higher statistical power.
# LLMFI_NATIVE=1 rebuilds with -march=native -O3 first (machine-tuned
# numbers; leave unset for the portable default build).
set -u
cd "$(dirname "$0")"
if [ "${LLMFI_NATIVE:-0}" = "1" ]; then
  cmake -B build -S . -DLLMFI_NATIVE=ON
  cmake --build build -j
fi
export LLMFI_TRIALS=400 LLMFI_INPUTS=12
mkdir -p bench_logs
failed=()
ran=0
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  name=$(basename "$b")
  case "$name" in *.cmake|CMakeFiles|CTestTestfile*) continue;; esac
  echo "=== $name ==="
  timeout 1800 "$b" > "bench_logs/$name.txt" 2>&1
  code=$?
  ran=$((ran + 1))
  echo "exit=$code $(date +%T)"
  if [ "$code" -ne 0 ]; then
    failed+=("$name (exit $code)")
  fi
done
# Benches use their exit code as a self-check (identity cross-checks,
# expected-shape gates); surface any failure instead of burying it in
# the per-bench logs.
if [ "${#failed[@]}" -gt 0 ]; then
  echo "FAILED (${#failed[@]}/$ran):"
  printf '  %s\n' "${failed[@]}"
  exit 1
fi
echo "ALL_DONE ($ran benches)"
