#!/bin/bash
# Final bench sweep at higher statistical power.
set -u
cd "$(dirname "$0")"
export LLMFI_TRIALS=400 LLMFI_INPUTS=12
mkdir -p bench_logs
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  name=$(basename "$b")
  case "$name" in *.cmake|CMakeFiles|CTestTestfile*) continue;; esac
  echo "=== $name ==="
  timeout 1800 "$b" > "bench_logs/$name.txt" 2>&1
  echo "exit=$? $(date +%T)"
done
echo ALL_DONE
