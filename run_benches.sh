#!/bin/bash
# Final bench sweep at higher statistical power.
# LLMFI_NATIVE=1 rebuilds with -march=native -O3 first (machine-tuned
# numbers; leave unset for the portable default build).
set -u
cd "$(dirname "$0")"
if [ "${LLMFI_NATIVE:-0}" = "1" ]; then
  cmake -B build -S . -DLLMFI_NATIVE=ON
  cmake --build build -j
fi
export LLMFI_TRIALS=400 LLMFI_INPUTS=12
mkdir -p bench_logs
# Refuse to sweep a Debug build: bench/common.h's require_release_build
# makes every bench exit 3 when NDEBUG is unset (LLMFI_ALLOW_DEBUG_BENCH=1
# overrides). Probe once up front so the failure is one line here, not 28
# misleading log files.
if ! LLMFI_KERNEL_HARNESS=0 build/bench/micro_perf \
    --benchmark_filter='MatchesNoBenchmark' > /dev/null 2>&1; then
  echo "run_benches.sh: micro_perf probe failed — Debug build? Reconfigure" \
       "with -DCMAKE_BUILD_TYPE=Release (or LLMFI_ALLOW_DEBUG_BENCH=1)."
  exit 3
fi
failed=()
ran=0
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  name=$(basename "$b")
  case "$name" in *.cmake|CMakeFiles|CTestTestfile*) continue;; esac
  echo "=== $name ==="
  timeout 1800 "$b" > "bench_logs/$name.txt" 2>&1
  code=$?
  ran=$((ran + 1))
  echo "exit=$code $(date +%T)"
  if [ "$code" -ne 0 ]; then
    failed+=("$name (exit $code)")
  fi
done
# Benches use their exit code as a self-check (identity cross-checks,
# expected-shape gates); surface any failure instead of burying it in
# the per-bench logs.
if [ "${#failed[@]}" -gt 0 ]; then
  echo "FAILED (${#failed[@]}/$ran):"
  printf '  %s\n' "${failed[@]}"
  exit 1
fi
echo "ALL_DONE ($ran benches)"
