#!/bin/bash
# Final bench sweep at higher statistical power.
# LLMFI_NATIVE=1 rebuilds with -march=native -O3 first (machine-tuned
# numbers; leave unset for the portable default build).
set -u
cd "$(dirname "$0")"
if [ "${LLMFI_NATIVE:-0}" = "1" ]; then
  cmake -B build -S . -DLLMFI_NATIVE=ON
  cmake --build build -j
fi
export LLMFI_TRIALS=400 LLMFI_INPUTS=12
mkdir -p bench_logs
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  name=$(basename "$b")
  case "$name" in *.cmake|CMakeFiles|CTestTestfile*) continue;; esac
  echo "=== $name ==="
  timeout 1800 "$b" > "bench_logs/$name.txt" 2>&1
  echo "exit=$? $(date +%T)"
done
echo ALL_DONE
