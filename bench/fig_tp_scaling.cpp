// Tensor-parallel scaling (DESIGN.md §14): single-sequence decode tok/s
// and prefill GFLOP/s at TP = 1/2/4/8 on a model large enough for the
// shard work to dominate the barrier cost (the zoo models are far too
// small — a 32-wide block hands each shard a few hundred FLOPs). The
// hard gate is identity: every TP degree must reproduce the TP=1 token
// stream and final-pass logits byte-for-byte, the invariant everything
// in §14 is built around. The speedup row is reported and stamped into
// bench_logs/BENCH_tp.json; the >= 1.6x-at-TP=4 expectation only
// applies on >= 4 hardware threads (a 1-core box serializes the shards
// and the JSON's hardware_concurrency says so).

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "common.h"
#include "model/transformer.h"
#include "report/bench_meta.h"
#include "tensor/kernels.h"

using namespace llmfi;

namespace {

constexpr int kPrefillTokens = 16;
constexpr int kDecodeSteps = 48;

model::ModelConfig bench_config() {
  model::ModelConfig cfg;
  cfg.vocab_size = 128;
  cfg.d_model = 512;
  cfg.n_layers = 4;
  cfg.n_heads = 8;
  cfg.d_ff = 2048;
  cfg.max_seq = 128;
  cfg.seed = 41;
  return cfg;
}

// Matmul FLOPs per token through the stack (attention's score/mix terms
// are O(d * ctx) and negligible next to the projections at this shape).
double flops_per_token(const model::ModelConfig& c) {
  const double d = static_cast<double>(c.d_model);
  const double ff = static_cast<double>(c.d_ff);
  return c.n_layers * (8.0 * d * d + 6.0 * d * ff) +
         2.0 * d * static_cast<double>(c.vocab_size);
}

struct TpRun {
  int tp = 1;
  double prefill_gflops = 0.0;
  double decode_tok_s = 0.0;
  std::vector<tok::TokenId> tokens;
  tn::Tensor last_logits;
};

tok::TokenId argmax_row(const tn::Tensor& logits, tn::Index row) {
  tok::TokenId best = 0;
  float best_v = logits.at(row, 0);
  for (tn::Index j = 1; j < logits.cols(); ++j) {
    if (logits.at(row, j) > best_v) {
      best_v = logits.at(row, j);
      best = static_cast<tok::TokenId>(j);
    }
  }
  return best;
}

TpRun run_tp(const model::ModelWeights& weights,
             const model::ModelConfig& cfg, int tp) {
  model::InferenceModel engine(weights, {});
  engine.set_tensor_parallel(tp);

  std::vector<tok::TokenId> prompt;
  for (int i = 0; i < kPrefillTokens; ++i) {
    prompt.push_back(static_cast<tok::TokenId>((i * 7 + 3) % cfg.vocab_size));
  }

  // Warmup: one full prefill+decode pass populates every lazy path.
  {
    nn::KvCache cache = engine.make_cache();
    auto logits = engine.forward(prompt, cache, 0);
    (void)engine.forward({{argmax_row(logits, logits.rows() - 1)}}, cache, 1);
  }

  TpRun run;
  run.tp = tp;
  nn::KvCache cache = engine.make_cache();
  const auto t0 = std::chrono::steady_clock::now();
  tn::Tensor logits = engine.forward(prompt, cache, 0);
  const auto t1 = std::chrono::steady_clock::now();
  const double prefill_sec = std::chrono::duration<double>(t1 - t0).count();
  run.prefill_gflops = kPrefillTokens * flops_per_token(cfg) /
                       prefill_sec / 1e9;

  tok::TokenId next = argmax_row(logits, logits.rows() - 1);
  const auto d0 = std::chrono::steady_clock::now();
  for (int step = 1; step <= kDecodeSteps; ++step) {
    run.tokens.push_back(next);
    logits = engine.forward({{next}}, cache, step);
    next = argmax_row(logits, 0);
  }
  const auto d1 = std::chrono::steady_clock::now();
  const double decode_sec = std::chrono::duration<double>(d1 - d0).count();
  run.decode_tok_s = kDecodeSteps / decode_sec;
  run.last_logits = std::move(logits);
  return run;
}

}  // namespace

int main() {
  benchutil::init_obs_from_env();
  const auto bench_t0 = std::chrono::steady_clock::now();
  // Perf runs want the fastest tier; an explicit LLMFI_KERNEL (already
  // consumed by the tier init) still wins so reference-tier A/Bs work.
  if (std::getenv("LLMFI_KERNEL") == nullptr) {
    tn::set_kernel_tier(tn::best_supported_tier());
  }

  const auto cfg = bench_config();
  const auto weights = model::ModelWeights::init(cfg);
  const unsigned hc = std::thread::hardware_concurrency();

  std::vector<TpRun> runs;
  for (int tp : {1, 2, 4, 8}) {
    runs.push_back(run_tp(weights, cfg, tp));
  }

  // Identity gate: same tokens, same final-pass logits, at every degree.
  const auto& ref = runs.front();
  bool identical = true;
  for (const auto& r : runs) {
    identical = identical && r.tokens == ref.tokens &&
                r.last_logits.rows() == ref.last_logits.rows() &&
                std::memcmp(r.last_logits.data(), ref.last_logits.data(),
                            sizeof(float) * static_cast<size_t>(
                                                ref.last_logits.numel())) == 0;
  }

  report::Table t("tp scaling: d_model=" + std::to_string(cfg.d_model) +
                  " n_layers=" + std::to_string(cfg.n_layers) +
                  " d_ff=" + std::to_string(cfg.d_ff) + " / " +
                  tn::kernel_tier_name(tn::kernel_tier()) + " tier / " +
                  std::to_string(hc) + " hw threads");
  t.header({"tp", "decode tok/s", "speedup", "prefill GFLOP/s", "speedup"});
  for (const auto& r : runs) {
    t.row({std::to_string(r.tp), report::fmt(r.decode_tok_s),
           report::fmt(r.decode_tok_s / ref.decode_tok_s),
           report::fmt(r.prefill_gflops),
           report::fmt(r.prefill_gflops / ref.prefill_gflops)});
  }
  t.row({"tokens+logits identical", benchutil::check(identical), "", "", ""});
  t.print(std::cout);

  double speedup_tp4 = 0.0;
  for (const auto& r : runs) {
    if (r.tp == 4) speedup_tp4 = r.decode_tok_s / ref.decode_tok_s;
  }
  std::printf("expected shape: decode speedup at TP=4 >= 1.6x on >= 4 "
              "hardware threads (this box has %u); identity must be yes "
              "at every degree.\n", hc);

  std::filesystem::create_directories("bench_logs");
  std::ofstream json("bench_logs/BENCH_tp.json");
  const double bench_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_t0)
          .count();
  json << "{\n"
       << "  \"meta\": " << report::bench_metadata(bench_sec).json() << ",\n"
       << "  \"d_model\": " << cfg.d_model << ",\n"
       << "  \"n_layers\": " << cfg.n_layers << ",\n"
       << "  \"d_ff\": " << cfg.d_ff << ",\n"
       << "  \"kernel_tier\": \"" << tn::kernel_tier_name(tn::kernel_tier())
       << "\",\n"
       << "  \"hardware_concurrency\": " << hc << ",\n"
       << "  \"prefill_tokens\": " << kPrefillTokens << ",\n"
       << "  \"decode_steps\": " << kDecodeSteps << ",\n"
       << "  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    json << "    {\"tp\": " << r.tp << ", "
         << "\"decode_tok_per_s\": " << r.decode_tok_s << ", "
         << "\"decode_speedup\": " << r.decode_tok_s / ref.decode_tok_s
         << ", "
         << "\"prefill_gflop_per_s\": " << r.prefill_gflops << ", "
         << "\"prefill_speedup\": " << r.prefill_gflops / ref.prefill_gflops
         << "}" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"decode_speedup_tp4\": " << speedup_tp4 << ",\n"
       << "  \"identical\": " << (identical ? "true" : "false") << "\n}\n";
  return identical ? 0 : 1;
}
