// Fig 17: quantized (GPTQ-style INT8/INT4) vs BF16 weights under 2-bit
// memory faults. Paper shape (Observation #8): quantized models stay at
// ~100% normalized performance because a payload bit flip moves a weight
// by at most a few quantization steps, while a bf16 exponent-MSB flip
// scales it by ~2^128.

#include "common.h"
#include "tensor/kernels.h"

using namespace llmfi;

int main() {
  // Run on the fast kernel path: quantized weights are consumed through
  // the int8/int4 qmatmul kernels (payloads read in integer form, no
  // dequantized fp32 product) — the serving configuration this figure
  // models. An explicit LLMFI_KERNEL still wins, so the reference oracle
  // stays one env var away.
  if (std::getenv("LLMFI_KERNEL") == nullptr) {
    tn::set_kernel_tier(tn::best_supported_tier());
  }
  std::printf("kernel tier: %s\n",
              tn::kernel_tier_name(tn::kernel_tier()));
  auto& zoo = benchutil::shared_zoo();
  const std::vector<data::TaskKind> kinds = {data::TaskKind::McFact,
                                             data::TaskKind::Translation,
                                             data::TaskKind::QA};

  report::Table t("Fig 17: quantized vs bf16 weights, 2bits-mem");
  t.header({"weights", "dataset", "baseline", "faulty",
            "normalized [95% CI]", "distorted"});

  for (auto dtype : {num::DType::BF16, num::DType::I8, num::DType::I4}) {
    const auto prec = model::PrecisionConfig::for_dtype(dtype);
    for (auto kind : kinds) {
      const auto& spec = eval::workload(kind);
      auto cfg = benchutil::default_campaign(core::FaultModel::Mem2Bit, 50,
                                             8);
      auto r = eval::run_campaign(zoo, "qilin", prec, spec, cfg);
      const std::string& metric = spec.metrics.front().name;
      t.row({std::string(num::dtype_name(dtype)), spec.dataset,
             report::fmt(r.baseline_mean(metric)),
             report::fmt(r.faulty_mean(metric)),
             report::fmt_ratio(r.normalized(metric)),
             std::to_string(r.sdc_distorted)});
    }
  }
  t.print(std::cout);
  std::printf("paper shape: int8/int4 normalized ~1.0 >> bf16; fault-free "
              "baseline slightly lower after quantization.\n");
  return 0;
}
