// Fig 4: average performance change per fault model (1bit-comp vs
// 2bits-comp vs 2bits-mem), aggregated over models and a representative
// dataset slice. Memory faults must come out worst (Observation #1).

#include "common.h"

using namespace llmfi;

int main() {
  auto& zoo = benchutil::shared_zoo();
  const std::vector<data::TaskKind> kinds = {
      data::TaskKind::McFact, data::TaskKind::McCoref,
      data::TaskKind::MathGsm, data::TaskKind::Translation,
      data::TaskKind::QA};
  const std::vector<std::string> models = {"aquila", "qilin", "falco"};

  report::Table t("Fig 4: average performance change per fault model");
  t.header({"fault", "mean normalized", "mean SDC rate", "distorted rate",
            "cells"});

  for (auto fault : {core::FaultModel::Comp1Bit, core::FaultModel::Comp2Bit,
                     core::FaultModel::Mem2Bit}) {
    metrics::Accumulator norm, sdc, distorted;
    for (auto kind : kinds) {
      const auto& spec = eval::workload(kind);
      for (const auto& m : models) {
        auto cfg = benchutil::default_campaign(fault, 36, 6);
        auto r = eval::run_campaign(zoo, m, benchutil::default_precision(), spec, cfg);
        norm.add(r.normalized(spec.metrics.front().name).value);
        sdc.add(r.sdc_rate());
        distorted.add(static_cast<double>(r.sdc_distorted) /
                      std::max(1, r.trials()));
      }
    }
    t.row({std::string(core::fault_model_name(fault)),
           report::fmt(norm.mean()), report::fmt_pct(sdc.mean()),
           report::fmt_pct(distorted.mean()), std::to_string(norm.n())});
  }
  t.print(std::cout);
  std::printf("paper shape: 2bits-mem < 2bits-comp <= 1bit-comp in "
              "normalized performance (memory faults are more critical).\n");
  return 0;
}
