// KV fork cost: contiguous row-copy vs paged page-aliasing (DESIGN.md
// §12) across prefix lengths. The contiguous fork copies prefix_len rows
// of float data per block, so its cost grows with the row *payload*
// (rows x d_model); the paged fork bumps page refcounts and deep-copies
// only the partially filled boundary page, so its cost is O(pages
// aliased) with a tiny per-page constant — independent of how much row
// data those pages hold. Gates are lenient — they assert the *shape* of
// the curves, not absolute timings: the paged fork must beat the
// contiguous fork by >= 4x at the longest prefix, and its per-page
// aliasing cost must stay flat (<= 4x drift) across prefix lengths.
// Machine-readable copy goes to bench_logs/BENCH_kv.json.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <vector>

#include "common.h"
#include "nn/kv_cache.h"
#include "nn/kv_page.h"
#include "report/bench_meta.h"

using namespace llmfi;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Fills every block of `cache` with `rows` marked rows so forks have
// real data to copy/alias.
void fill(nn::KvCache& cache, tn::Index rows) {
  const tn::Index d = cache.d_model();
  std::vector<float> k(static_cast<std::size_t>(d));
  std::vector<float> v(static_cast<std::size_t>(d));
  for (tn::Index r = 0; r < rows; ++r) {
    for (tn::Index c = 0; c < d; ++c) {
      k[static_cast<std::size_t>(c)] = static_cast<float>(r * d + c);
      v[static_cast<std::size_t>(c)] = -k[static_cast<std::size_t>(c)];
    }
    for (int b = 0; b < cache.n_blocks(); ++b) cache.append_row(b, k, v);
    cache.advance(1);
  }
}

// Median-of-repeats ns/fork for dst.fork_from(src, prefix).
double time_fork_ns(nn::KvCache& dst, const nn::KvCache& src,
                    tn::Index prefix, int iters) {
  std::vector<double> reps;
  for (int rep = 0; rep < 5; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) dst.fork_from(src, prefix);
    reps.push_back(seconds_since(t0) * 1e9 / iters);
  }
  std::sort(reps.begin(), reps.end());
  return reps[reps.size() / 2];
}

}  // namespace

int main() {
  const auto bench_t0 = std::chrono::steady_clock::now();

  // Geometry in the small-model regime the test campaigns use, scaled up
  // far enough that the contiguous copy cost is unmistakable.
  const int n_blocks = 4;
  const tn::Index d_model = 128;
  const tn::Index max_seq = 2048;
  const std::vector<tn::Index> prefixes = {128, 256, 512, 1024, 2048};
  const int iters = benchutil::env_int("LLMFI_TRIALS", 300);

  nn::KvCache contig_src(n_blocks, max_seq, d_model);
  fill(contig_src, max_seq);
  nn::KvCache contig_dst(n_blocks, max_seq, d_model);

  auto pool = std::make_shared<nn::PagePool>(
      /*pages=*/2048, nn::PagePool::kDefaultPageRows, d_model);
  nn::KvCache paged_src(n_blocks, max_seq, d_model, pool);
  fill(paged_src, max_seq);
  nn::KvCache paged_dst(n_blocks, max_seq, d_model, pool);

  struct Point {
    tn::Index prefix;
    double contig_ns;
    double paged_ns;
  };
  std::vector<Point> curve;
  bool rows_match = true;
  for (tn::Index prefix : prefixes) {
    Point p{prefix, 0.0, 0.0};
    p.contig_ns = time_fork_ns(contig_dst, contig_src, prefix, iters / 4);
    p.paged_ns = time_fork_ns(paged_dst, paged_src, prefix, iters);
    // The speed means nothing if the fork is wrong: spot-check the last
    // forked row against the source in both layouts.
    for (int b = 0; b < n_blocks && prefix > 0; ++b) {
      rows_match &= contig_dst.key_at(b, prefix - 1, d_model - 1) ==
                    contig_src.key_at(b, prefix - 1, d_model - 1);
      rows_match &= paged_dst.value_at(b, prefix - 1, 0) ==
                    paged_src.value_at(b, prefix - 1, 0);
    }
    curve.push_back(p);
  }

  const auto pages_aliased = [&](tn::Index prefix) {
    return static_cast<double>(n_blocks) *
           static_cast<double>(
               nn::PagePool::pages_for(prefix, pool->page_rows()));
  };
  const double contig_max = curve.back().contig_ns;
  const double paged_max = curve.back().paged_ns;
  const double per_page_min = curve.front().paged_ns /
                              pages_aliased(curve.front().prefix);
  const double per_page_max = paged_max / pages_aliased(curve.back().prefix);
  const bool paged_beats_contig = paged_max * 4.0 <= contig_max;
  const bool per_page_flat =
      std::max(per_page_min, per_page_max) <=
      4.0 * std::min(per_page_min, per_page_max);
  const bool ok = rows_match && paged_beats_contig && per_page_flat;

  report::Table t("fork_from cost: contiguous copy vs paged aliasing");
  t.header({"prefix rows", "contiguous ns/fork", "paged ns/fork", "speedup",
            "paged ns/page"});
  for (const auto& p : curve) {
    t.row({std::to_string(p.prefix), report::fmt(p.contig_ns),
           report::fmt(p.paged_ns), report::fmt(p.contig_ns / p.paged_ns),
           report::fmt(p.paged_ns / pages_aliased(p.prefix))});
  }
  t.print(std::cout);
  std::printf("forked rows match source: %s\n", benchutil::check(rows_match));
  std::printf("paged >= 4x faster at max prefix: %s (%.0f vs %.0f ns)\n",
              benchutil::check(paged_beats_contig), contig_max, paged_max);
  std::printf("paged per-page aliasing cost flat (<= 4x drift): %s "
              "(%.1f vs %.1f ns/page)\n",
              benchutil::check(per_page_flat), per_page_min, per_page_max);
  std::printf("expected shape: contiguous ns/fork grows with the row "
              "payload; paged is O(pages) table aliasing + one boundary "
              "page copy, so ns/page stays flat and the speedup widens "
              "with the prefix.\n");

  std::filesystem::create_directories("bench_logs");
  std::ofstream json("bench_logs/BENCH_kv.json");
  json << "{\n"
       << "  \"meta\": "
       << report::bench_metadata(seconds_since(bench_t0)).json() << ",\n"
       << "  \"n_blocks\": " << n_blocks << ",\n"
       << "  \"d_model\": " << d_model << ",\n"
       << "  \"max_seq\": " << max_seq << ",\n"
       << "  \"page_rows\": " << nn::PagePool::kDefaultPageRows << ",\n"
       << "  \"iters\": " << iters << ",\n"
       << "  \"curve\": [\n";
  for (std::size_t i = 0; i < curve.size(); ++i) {
    json << "    {\"prefix\": " << curve[i].prefix
         << ", \"contiguous_ns\": " << curve[i].contig_ns
         << ", \"paged_ns\": " << curve[i].paged_ns
         << ", \"paged_ns_per_page\": "
         << curve[i].paged_ns / pages_aliased(curve[i].prefix) << "}"
         << (i + 1 < curve.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"rows_match\": " << (rows_match ? "true" : "false") << ",\n"
       << "  \"paged_4x_faster_at_max\": "
       << (paged_beats_contig ? "true" : "false") << ",\n"
       << "  \"paged_per_page_cost_flat\": "
       << (per_page_flat ? "true" : "false") << "\n}\n";
  return ok ? 0 : 1;
}
