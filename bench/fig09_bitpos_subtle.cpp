// Fig 9: proportion of subtly-wrong outputs grouped by the position of
// the highest flipped bit (gsm8k-syn). The MSB of the exponent dominates.

#include "common.h"

using namespace llmfi;

int main() {
  auto& zoo = benchutil::shared_zoo();
  const auto& spec = eval::workload(data::TaskKind::MathGsm);

  report::Table t(
      "Fig 9: subtly-wrong outputs by highest flipped bit (gsm8k-syn)");
  t.header({"model", "fault", "bit", "trials@bit", "subtle", "share of all "
            "subtle outputs"});

  for (const std::string m : {"qilin", "falco"}) {
    for (auto fault : {core::FaultModel::Comp2Bit,
                       core::FaultModel::Mem2Bit}) {
      auto cfg = benchutil::default_campaign(fault, 120, 8);
      auto r = eval::run_campaign(zoo, m, benchutil::default_precision(), spec, cfg);
      int total_subtle = 0;
      for (const auto& [bit, counts] : r.by_highest_bit) {
        total_subtle += counts[1];
      }
      for (const auto& [bit, counts] : r.by_highest_bit) {
        const int n_at_bit = counts[0] + counts[1] + counts[2];
        t.row({m, std::string(core::fault_model_name(fault)),
               std::to_string(bit), std::to_string(n_at_bit),
               std::to_string(counts[1]),
               total_subtle
                   ? report::fmt_pct(static_cast<double>(counts[1]) /
                                     total_subtle)
                   : "n/a"});
      }
    }
  }
  t.print(std::cout);
  std::printf("paper shape: bit 14 (the bf16 exponent MSB) contributes the "
              "largest share of subtly-wrong outputs.\n");
  return 0;
}
