// Fig 6: propagation trace of a computational fault. Flip the MSB of one
// output neuron of a mid-block up_proj during the forward pass: the
// corruption stays within a single *row* (one token) and the following
// RMSNorm largely contains it, in contrast to the memory fault of Fig 5.

#include "common.h"
#include "core/injector.h"
#include "core/tracer.h"

using namespace llmfi;

int main() {
  auto& zoo = benchutil::shared_zoo();
  model::InferenceModel engine(zoo.get("qilin"), {});
  const auto& vocab = zoo.vocab();
  const auto& ex = zoo.task(data::TaskKind::Translation).eval.front();
  std::vector<tok::TokenId> prompt = {vocab.bos()};
  const auto body = vocab.encode(ex.prompt);
  prompt.insert(prompt.end(), body.begin(), body.end());

  const auto clean = core::capture_layer_outputs(engine, prompt);

  // Target: block 1 up_proj output, token row ~mid-prompt, neuron 20,
  // MSB of the fp32 activation.
  core::FaultPlan plan;
  plan.model = core::FaultModel::Comp1Bit;
  plan.layer = {1, nn::LayerKind::UpProj, -1};
  plan.pass_index = 0;
  plan.row_frac = 0.5;
  plan.out_col = 20;
  plan.bits = {30};

  core::ComputationalFaultInjector injector(plan,
                                            engine.precision().act_dtype);
  std::vector<core::CapturedLayer> faulty;
  {
    core::LinearHookGuard guard(engine, &injector);
    faulty = core::capture_layer_outputs(engine, prompt);
  }
  if (injector.fired()) {
    std::printf("neuron (%lld, %lld) of %s: %.5g -> %.5g\n",
                static_cast<long long>(injector.record().row),
                static_cast<long long>(injector.record().col),
                to_string(plan.layer).c_str(),
                static_cast<double>(injector.record().old_value),
                static_cast<double>(injector.record().new_value));
  }

  const auto diffs = core::diff_captures(clean, faulty);
  report::Table t(
      "Fig 6: computational-fault propagation (corrupted fraction per "
      "layer output)");
  t.header({"layer", "shape", "rows hit", "cols hit", "elems hit",
            "max |delta|"});
  for (const auto& d : diffs) {
    t.row({to_string(d.id),
           std::to_string(d.rows) + "x" + std::to_string(d.cols),
           report::fmt_pct(d.row_fraction()),
           report::fmt_pct(d.col_fraction()),
           std::to_string(d.corrupted_elems), report::fmt(d.max_abs_delta, 3)});
  }
  t.print(std::cout);

  // Mechanical check of the Fig 6 claim: within this block the fault
  // touches exactly one row, and the total corrupted fraction stays far
  // below the memory-fault case of Fig 5 (no full-tensor takeover).
  for (size_t i = 0; i < diffs.size(); ++i) {
    if (diffs[i].id == plan.layer) {
      const auto& at = diffs[i];
      const auto& next = diffs[i + 1];
      std::printf(
          "at injected layer: rows hit = %lld (expect 1), cols hit = %lld\n",
          static_cast<long long>(at.corrupted_rows),
          static_cast<long long>(at.corrupted_cols));
      std::printf("next layer (%s): row fraction = %.1f%% (stays one row "
                  "within this block)\n",
                  to_string(next.id).c_str(), 100.0 * next.row_fraction());
      break;
    }
  }
  return 0;
}
