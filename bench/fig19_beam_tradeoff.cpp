// Fig 19: resilience vs runtime across beam counts {1,2,4,6,8}. Paper
// shape: normalized performance jumps from greedy to 2 beams, then
// plateaus while runtime keeps growing — num_beams=2 is the sweet spot.

#include "common.h"

using namespace llmfi;

int main() {
  auto& zoo = benchutil::shared_zoo();
  struct Cell {
    data::TaskKind kind;
    const char* model;
  };
  const std::vector<Cell> cells = {
      {data::TaskKind::Translation, "alma"},
      {data::TaskKind::Summarization, "summarizer"},
  };

  report::Table t("Fig 19: resilience/runtime trade-off vs num_beams "
                  "(2bits-comp)");
  t.header({"dataset", "model", "beams", "normalized [95% CI]",
            "runtime/trial (ms)"});

  for (const auto& cell : cells) {
    const auto& spec = eval::workload(cell.kind);
    for (int beams : {1, 2, 4, 6, 8}) {
      auto cfg = benchutil::default_campaign(core::FaultModel::Comp2Bit, 40,
                                             6);
      cfg.run.gen.num_beams = beams;
      auto r = eval::run_campaign(zoo, cell.model, benchutil::default_precision(), spec, cfg);
      t.row({spec.dataset, cell.model, std::to_string(beams),
             report::fmt_ratio(r.normalized(spec.metrics.front().name)),
             report::fmt(1000.0 * r.total_runtime_sec / cfg.trials, 1)});
    }
  }
  t.print(std::cout);
  std::printf("paper shape: resilience improves 1->2 beams then saturates; "
              "runtime grows ~linearly with beams. Optimal trade-off: 2.\n");
  return 0;
}
