// Fig 12: SDC case study — a single computational fault flips a token in
// the chain-of-thought, the error propagates through the remaining
// reasoning steps, and the final answer comes out wrong. This bench
// searches seeded fault locations until it finds such a case and prints
// the clean/faulty traces side by side.

#include "common.h"
#include "core/injector.h"
#include "data/tasks.h"

using namespace llmfi;

int main() {
  auto& zoo = benchutil::shared_zoo();
  model::InferenceModel engine(zoo.get("qilin"),
                               benchutil::default_precision());
  const auto& spec = eval::workload(data::TaskKind::MathGsm);
  const auto& eval_set = zoo.task(data::TaskKind::MathGsm).eval;
  eval::RunOptions opt;

  num::Rng rng(static_cast<std::uint64_t>(
      benchutil::env_int("LLMFI_SEED", 2025)));
  int shown = 0;
  for (int attempt = 0; attempt < 400 && shown < 2; ++attempt) {
    const auto& ex = eval_set[static_cast<size_t>(attempt) % eval_set.size()];
    auto base = eval::run_example(engine, zoo.vocab(), spec, ex, opt);
    if (!base.correct) continue;  // want a clean baseline

    core::SamplerScope scope;
    scope.max_passes = std::max(1, base.passes);
    num::Rng trial_rng = rng.fork(static_cast<std::uint64_t>(attempt));
    auto plan = core::sample_fault(core::FaultModel::Comp2Bit, engine, scope,
                                   trial_rng);
    core::ComputationalFaultInjector injector(plan,
                                              engine.precision().act_dtype);
    eval::ExampleResult faulty;
    {
      core::LinearHookGuard guard(engine, &injector);
      faulty = eval::run_example(engine, zoo.vocab(), spec, ex, opt);
    }

    // Interesting case: reasoning text changed AND the final answer is
    // now wrong (an SDC caused inside the chain of thought).
    if (!faulty.correct && faulty.output != base.output &&
        injector.fired()) {
      std::printf("question:  %s\nreference: %s\n", ex.prompt.c_str(),
                  ex.reference.c_str());
      std::printf("fault:     %s, pass %d, neuron (%lld,%lld), bits {",
                  nn::to_string(plan.layer).c_str(), plan.pass_index,
                  static_cast<long long>(injector.record().row),
                  static_cast<long long>(injector.record().col));
      for (size_t i = 0; i < plan.bits.size(); ++i) {
        std::printf("%s%d", i ? "," : "", plan.bits[i]);
      }
      std::printf("}; value %.4g -> %.4g\n",
                  static_cast<double>(injector.record().old_value),
                  static_cast<double>(injector.record().new_value));
      std::printf("baseline:  %s\nfaulty:    %s\n",
                  base.output.c_str(), faulty.output.c_str());
      std::printf("final answer: \"%s\" vs reference \"%s\" -> SDC\n\n",
                  data::extract_final_answer(faulty.output).c_str(),
                  ex.final_answer.c_str());
      ++shown;
    }
  }
  if (shown == 0) {
    std::printf("no reasoning-corrupting fault found within the search "
                "budget; increase LLMFI_SEED variety\n");
    return 1;
  }
  return 0;
}
