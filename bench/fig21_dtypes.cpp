// Fig 21: resilience per storage datatype (FP32 / FP16 / BF16) for one
// model across several datasets. Paper shape (Observation #11): FP16 is
// most resilient (5 exponent bits, bounded range), BF16 least (8
// exponent bits, a single MSB flip reaches ~1e38).

#include "common.h"

using namespace llmfi;

int main() {
  auto& zoo = benchutil::shared_zoo();
  const std::vector<data::TaskKind> kinds = {
      data::TaskKind::McFact, data::TaskKind::MathGsm,
      data::TaskKind::Translation, data::TaskKind::QA};

  report::Table t("Fig 21: resilience per data type (qilin)");
  t.header({"dtype", "dataset", "fault", "baseline", "faulty",
            "normalized [95% CI]"});

  metrics::Accumulator per_dtype[3];
  const num::DType dtypes[3] = {num::DType::F16, num::DType::F32,
                                num::DType::BF16};
  for (int di = 0; di < 3; ++di) {
    const auto prec = model::PrecisionConfig::for_dtype(dtypes[di]);
    for (auto kind : kinds) {
      const auto& spec = eval::workload(kind);
      for (auto fault : {core::FaultModel::Comp2Bit,
                         core::FaultModel::Mem2Bit}) {
        auto cfg = benchutil::default_campaign(fault, 40, 6);
        auto r = eval::run_campaign(zoo, "qilin", prec, spec, cfg);
        const auto norm = r.normalized(spec.metrics.front().name);
        per_dtype[di].add(norm.value);
        const std::string& metric = spec.metrics.front().name;
        t.row({std::string(num::dtype_name(dtypes[di])), spec.dataset,
               std::string(core::fault_model_name(fault)),
               report::fmt(r.baseline_mean(metric)),
               report::fmt(r.faulty_mean(metric)), report::fmt_ratio(norm)});
      }
    }
  }
  t.print(std::cout);

  report::Table avg("Average normalized performance per dtype");
  avg.header({"dtype", "mean normalized"});
  for (int di = 0; di < 3; ++di) {
    avg.row({std::string(num::dtype_name(dtypes[di])),
             report::fmt(per_dtype[di].mean())});
  }
  avg.print(std::cout);
  std::printf("paper shape: fp16 >= fp32 > bf16 in normalized "
              "performance.\n");
  return 0;
}
