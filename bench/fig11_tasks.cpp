// Fig 11: performance change per downstream task, aggregated over the
// general-purpose models and all three fault models. Generative tasks
// (especially math reasoning) degrade more than multiple-choice tasks
// (Observation #2).

#include "common.h"

using namespace llmfi;

int main() {
  auto& zoo = benchutil::shared_zoo();
  report::Table t("Fig 11: performance change per downstream task");
  t.header({"dataset", "style", "mean normalized", "mean SDC rate",
            "cells"});

  metrics::Accumulator mc_norm, gen_norm;
  for (const auto& spec : eval::all_workloads()) {
    metrics::Accumulator norm, sdc;
    for (const std::string m : {"qilin", "falco"}) {
      for (auto fault : {core::FaultModel::Comp2Bit,
                         core::FaultModel::Mem2Bit}) {
        auto cfg = benchutil::default_campaign(fault, 36, 6);
        auto r = eval::run_campaign(zoo, m, benchutil::default_precision(), spec, cfg);
        norm.add(r.normalized(spec.metrics.front().name).value);
        sdc.add(r.sdc_rate());
      }
    }
    const bool mc = spec.style == data::TaskStyle::MultipleChoice;
    (mc ? mc_norm : gen_norm).add(norm.mean());
    t.row({spec.dataset, mc ? "multiple-choice" : "generative",
           report::fmt(norm.mean()), report::fmt_pct(sdc.mean()),
           std::to_string(norm.n())});
  }
  t.print(std::cout);
  std::printf("multiple-choice mean normalized: %.4f\n", mc_norm.mean());
  std::printf("generative mean normalized:      %.4f\n", gen_norm.mean());
  std::printf("paper shape: generative < multiple-choice (generative tasks "
              "are more vulnerable).\n");
  return 0;
}
