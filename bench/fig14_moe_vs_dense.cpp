// Fig 14: MoE vs dense resilience by task type under memory faults.
// Paper shape: MoE slightly *worse* on multiple-choice (single
// iteration, expert-selection shifts hurt immediately) but *better* on
// generative tasks (later iterations rarely touch the faulty expert).

#include "common.h"

using namespace llmfi;

int main() {
  auto& zoo = benchutil::shared_zoo();
  const std::vector<data::TaskKind> kinds = {
      data::TaskKind::McFact, data::TaskKind::McScience,
      data::TaskKind::Translation, data::TaskKind::QA};

  report::Table t("Fig 14: MoE vs dense under 2bits-mem faults");
  t.header({"dataset", "style", "model", "baseline", "faulty",
            "normalized [95% CI]"});

  for (auto kind : kinds) {
    const auto& spec = eval::workload(kind);
    for (const std::string m : {"qilin-moe", "qilin-dense"}) {
      auto cfg = benchutil::default_campaign(core::FaultModel::Mem2Bit, 60,
                                             8);
      auto r = eval::run_campaign(zoo, m, benchutil::default_precision(), spec, cfg);
      const std::string& metric = spec.metrics.front().name;
      t.row({spec.dataset,
             spec.style == data::TaskStyle::MultipleChoice ? "MC" : "gen",
             m, report::fmt(r.baseline_mean(metric)),
             report::fmt(r.faulty_mean(metric)),
             report::fmt_ratio(r.normalized(metric))});
    }
  }
  t.print(std::cout);
  std::printf("paper shape: MoE normalized < dense on MC datasets; MoE "
              "normalized > dense on generative datasets.\n");
  return 0;
}
