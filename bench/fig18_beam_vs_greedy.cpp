// Fig 18: beam search (num_beams=6) vs greedy search under 2-bit
// computational faults, on translation and summarization with both base
// and fine-tuned models. Paper shape (Observation #9): beam search is
// more resilient, most clearly for the fine-tuned models.

#include "common.h"

using namespace llmfi;

int main() {
  auto& zoo = benchutil::shared_zoo();
  struct Cell {
    data::TaskKind kind;
    const char* model;
  };
  const std::vector<Cell> cells = {
      {data::TaskKind::Translation, "qilin"},
      {data::TaskKind::Translation, "alma"},
      {data::TaskKind::Summarization, "aquila"},
      {data::TaskKind::Summarization, "summarizer"},
  };

  report::Table t("Fig 18: beam (6) vs greedy under 2bits-comp");
  t.header({"dataset", "model", "search", "baseline", "faulty",
            "normalized [95% CI]"});

  for (const auto& cell : cells) {
    const auto& spec = eval::workload(cell.kind);
    for (int beams : {1, 6}) {
      auto cfg = benchutil::default_campaign(core::FaultModel::Comp2Bit, 60,
                                             8);
      cfg.run.gen.num_beams = beams;
      auto r = eval::run_campaign(zoo, cell.model, benchutil::default_precision(), spec, cfg);
      const std::string& metric = spec.metrics.front().name;
      t.row({spec.dataset, cell.model, beams == 1 ? "greedy" : "beam-6",
             report::fmt(r.baseline_mean(metric)),
             report::fmt(r.faulty_mean(metric)),
             report::fmt_ratio(r.normalized(metric))});
    }
  }
  t.print(std::cout);
  std::printf("paper shape: beam-6 normalized >= greedy in every row, with "
              "the clearest gap for alma/summarizer.\n");
  return 0;
}
