// Fig 15: memory faults restricted to MoE gate (router) layers on the
// translation task. Measures how often the expert selection changes, how
// often the output text changes, and the BLEU/chrF++ degradation —
// Observation #6: routers need explicit protection.

#include "common.h"
#include "core/injector.h"
#include "metrics/text_metrics.h"

using namespace llmfi;

namespace {

class SelectionRecorder : public nn::ExpertObserver {
 public:
  void on_expert_selection(int block, int token_position,
                           std::span<const int> experts) override {
    log_.emplace_back(block, token_position,
                      std::vector<int>(experts.begin(), experts.end()));
  }
  void clear() { log_.clear(); }
  const auto& log() const { return log_; }

 private:
  std::vector<std::tuple<int, int, std::vector<int>>> log_;
};

}  // namespace

int main() {
  auto& zoo = benchutil::shared_zoo();
  model::InferenceModel engine(zoo.get("qilin-moe"),
                               benchutil::default_precision());
  const auto& spec = eval::workload(data::TaskKind::Translation);
  const auto& eval_set = zoo.task(data::TaskKind::Translation).eval;
  auto cfg = benchutil::default_campaign(core::FaultModel::Mem2Bit, 120, 10);
  cfg.layer_filter = [](const nn::LinearId& id) {
    return id.kind == nn::LayerKind::Router;
  };
  eval::RunOptions opt;

  SelectionRecorder recorder;
  int selection_changed = 0;
  int tokens_changed = 0;
  int both = 0;
  metrics::Accumulator base_bleu, faulty_bleu, base_chrf, faulty_chrf;

  num::Rng rng(cfg.seed);
  for (int trial = 0; trial < cfg.trials; ++trial) {
    const auto& ex =
        eval_set[static_cast<size_t>(trial % cfg.n_inputs)];

    engine.set_expert_observer(&recorder);
    recorder.clear();
    auto base = eval::run_example(engine, zoo.vocab(), spec, ex, opt);
    auto base_log = recorder.log();

    core::SamplerScope scope;
    scope.layer_filter = cfg.layer_filter;
    scope.max_passes = std::max(1, base.passes);
    num::Rng trial_rng = rng.fork(static_cast<std::uint64_t>(trial));
    auto plan = core::sample_fault(cfg.fault, engine, scope, trial_rng);
    recorder.clear();
    eval::ExampleResult faulty;
    {
      core::WeightCorruption guard(engine, plan);
      faulty = eval::run_example(engine, zoo.vocab(), spec, ex, opt);
    }
    engine.set_expert_observer(nullptr);

    const bool sel_diff = recorder.log() != base_log;
    const bool tok_diff = faulty.output != base.output;
    selection_changed += sel_diff ? 1 : 0;
    tokens_changed += tok_diff ? 1 : 0;
    both += (sel_diff && tok_diff) ? 1 : 0;
    base_bleu.add(base.metrics.at("bleu"));
    faulty_bleu.add(faulty.metrics.at("bleu"));
    base_chrf.add(base.metrics.at("chrf++"));
    faulty_chrf.add(faulty.metrics.at("chrf++"));
  }

  report::Table t("Fig 15: 2bits-mem faults in gate (router) layers, "
                  "wmt16-syn");
  t.header({"quantity", "value"});
  t.row({"trials", std::to_string(cfg.trials)});
  t.row({"expert selection changed",
         report::fmt_pct(static_cast<double>(selection_changed) /
                         cfg.trials)});
  t.row({"output tokens changed",
         report::fmt_pct(static_cast<double>(tokens_changed) / cfg.trials)});
  t.row({"selection AND tokens changed (share of selection-changed)",
         selection_changed
             ? report::fmt_pct(static_cast<double>(both) / selection_changed)
             : "n/a"});
  t.row({"BLEU degradation",
         report::fmt_pct(1.0 - faulty_bleu.mean() /
                                   std::max(1e-9, base_bleu.mean()))});
  t.row({"chrF++ degradation",
         report::fmt_pct(1.0 - faulty_chrf.mean() /
                                   std::max(1e-9, base_chrf.mean()))});
  t.print(std::cout);
  std::printf("paper shape: most gate faults change expert selections "
              "(78.6%% in the paper), a sizeable fraction of those change "
              "tokens (47.4%%), overall quality drop of ~2%%.\n");
  return 0;
}
