// Fig 5: propagation trace of a memory fault. Flip the MSB of one weight
// in a mid-block up_proj and diff every linear layer's output against
// the clean run: the fault-injected layer shows a single corrupted
// *column* across all token rows; the next layer's output is corrupted
// everywhere.

#include "common.h"
#include "core/injector.h"
#include "core/tracer.h"

using namespace llmfi;

int main() {
  auto& zoo = benchutil::shared_zoo();
  model::InferenceModel engine(zoo.get("qilin"), {});
  const auto& vocab = zoo.vocab();
  const auto& ex = zoo.task(data::TaskKind::Translation).eval.front();
  std::vector<tok::TokenId> prompt = {vocab.bos()};
  const auto body = vocab.encode(ex.prompt);
  prompt.insert(prompt.end(), body.begin(), body.end());

  const auto clean = core::capture_layer_outputs(engine, prompt);

  // Target: block 1 up_proj, weight (20, 20), MSB (fp32 bit 30).
  core::FaultPlan plan;
  plan.model = core::FaultModel::Mem2Bit;
  plan.layer = {1, nn::LayerKind::UpProj, -1};
  plan.weight_row = 20;
  plan.weight_col = 20;
  plan.bits = {30};
  auto layers = engine.linear_layers();
  for (int i = 0; i < static_cast<int>(layers.size()); ++i) {
    if (layers[static_cast<size_t>(i)].id == plan.layer) plan.layer_index = i;
  }

  std::vector<core::CapturedLayer> faulty;
  {
    core::WeightCorruption guard(engine, plan);
    std::printf("weight %s (20,20): %.5g -> %.5g\n",
                to_string(plan.layer).c_str(),
                static_cast<double>(guard.old_value()),
                static_cast<double>(guard.new_value()));
    faulty = core::capture_layer_outputs(engine, prompt);
  }

  const auto diffs = core::diff_captures(clean, faulty);
  report::Table t(
      "Fig 5: memory-fault propagation (corrupted fraction per layer "
      "output)");
  t.header({"layer", "shape", "rows hit", "cols hit", "elems hit",
            "max |delta|"});
  for (const auto& d : diffs) {
    t.row({to_string(d.id),
           std::to_string(d.rows) + "x" + std::to_string(d.cols),
           report::fmt_pct(d.row_fraction()),
           report::fmt_pct(d.col_fraction()),
           std::to_string(d.corrupted_elems), report::fmt(d.max_abs_delta, 3)});
  }
  t.print(std::cout);

  // The Fig 5 claim, checked mechanically: at the injected layer exactly
  // one column is corrupted but every row is; the *next* linear layer
  // (down_proj of the same block) is corrupted across many columns.
  for (size_t i = 0; i < diffs.size(); ++i) {
    if (diffs[i].id == plan.layer) {
      const auto& at = diffs[i];
      const auto& next = diffs[i + 1];
      std::printf("at injected layer: cols hit = %lld (expect 1), rows hit "
                  "= %lld/%lld\n",
                  static_cast<long long>(at.corrupted_cols),
                  static_cast<long long>(at.corrupted_rows),
                  static_cast<long long>(at.rows));
      std::printf("next layer (%s): col fraction = %.1f%% (expect wide)\n",
                  to_string(next.id).c_str(), 100.0 * next.col_fraction());
      break;
    }
  }
  return 0;
}
