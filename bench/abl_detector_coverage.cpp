// Ablation: online SDC detection coverage vs false positives.
//
// An ActivationDetector (profiled-envelope monitor) watches every linear
// output during FI campaigns. Reported: how many SDC trials it flags
// (coverage), how many masked trials it flags (benign detections), and
// its false-positive rate on fault-free inputs — the operating point an
// HPC operator would tune (paper §7, "HPC system designers").

#include "common.h"
#include "core/detector.h"
#include "core/injector.h"

using namespace llmfi;

int main() {
  auto& zoo = benchutil::shared_zoo();
  model::InferenceModel engine(zoo.get("qilin"),
                               benchutil::default_precision());
  const auto& spec = eval::workload(data::TaskKind::MathGsm);
  const auto& eval_set = zoo.task(data::TaskKind::MathGsm).eval;
  const int trials = benchutil::env_int("LLMFI_TRIALS", 150);
  const int n_inputs = benchutil::env_int("LLMFI_INPUTS", 10);
  eval::RunOptions opt;

  std::vector<std::string> profile_prompts;
  for (int i = n_inputs; i < n_inputs + 10; ++i) {
    profile_prompts.push_back(eval_set[static_cast<size_t>(i)].prompt);
  }
  const auto profile =
      core::profile_activations(engine, zoo.vocab(), profile_prompts);

  // False positives on the fault-free eval inputs.
  int false_positives = 0;
  for (int i = 0; i < n_inputs; ++i) {
    core::ActivationDetector det(profile);
    {
      core::LinearHookGuard guard(engine, &det);
      (void)eval::run_example(engine, zoo.vocab(), spec,
                              eval_set[static_cast<size_t>(i)], opt);
    }
    false_positives += det.triggered() ? 1 : 0;
  }

  report::Table t("Ablation: activation-monitor SDC detection "
                  "(gsm8k-syn, qilin-bf16)");
  t.header({"fault", "SDC trials", "SDCs flagged (coverage)",
            "masked trials flagged"});

  for (auto fault : {core::FaultModel::Comp2Bit, core::FaultModel::Mem2Bit}) {
    num::Rng rng(777);
    int sdc = 0, sdc_flagged = 0, masked_flagged = 0, masked = 0;
    for (int trial = 0; trial < trials; ++trial) {
      const auto& ex = eval_set[static_cast<size_t>(trial % n_inputs)];
      num::Rng trng = rng.fork(static_cast<std::uint64_t>(trial));
      core::SamplerScope scope;
      scope.max_passes = 12;
      auto plan = core::sample_fault(fault, engine, scope, trng);

      core::ActivationDetector detector(profile);
      eval::ExampleResult res;
      if (core::is_memory_fault(fault)) {
        core::WeightCorruption wc(engine, plan);
        core::LinearHookGuard guard(engine, &detector);
        res = eval::run_example(engine, zoo.vocab(), spec, ex, opt);
      } else {
        core::ComputationalFaultInjector injector(
            plan, engine.precision().act_dtype);
        detector.set_next(&injector);
        core::LinearHookGuard guard(engine, &detector);
        res = eval::run_example(engine, zoo.vocab(), spec, ex, opt);
      }
      if (res.correct) {
        ++masked;
        masked_flagged += detector.triggered() ? 1 : 0;
      } else {
        ++sdc;
        sdc_flagged += detector.triggered() ? 1 : 0;
      }
    }
    t.row({std::string(core::fault_model_name(fault)), std::to_string(sdc),
           sdc ? report::fmt_pct(static_cast<double>(sdc_flagged) / sdc)
               : "n/a",
           masked ? report::fmt_pct(static_cast<double>(masked_flagged) /
                                    masked)
                  : "n/a"});
  }
  t.print(std::cout);
  std::printf("false positives on fault-free inputs: %d/%d\n",
              false_positives, n_inputs);
  std::printf("expected shape: high coverage of distortion-class SDCs "
              "(extreme values), partial coverage of subtle SDCs, ~zero "
              "false positives.\n");
  return 0;
}
