// Serve throughput: end-to-end trials/s of the batched campaign driver
// (DESIGN.md §10) against the sequential trial loop on the same
// transient greedy campaign — batch 1 (fork off and on) vs batch 2/4/8
// through the continuous-batching scheduler. Outcome counts are
// cross-checked across every arm: batching and forking only reschedule
// work whose outputs are already determined, so all arms must agree
// bit-for-bit. Machine-readable copy goes to bench_logs/BENCH_serve.json.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common.h"
#include "obs/recorder.h"
#include "report/bench_meta.h"

using namespace llmfi;

namespace {

struct Arm {
  std::string name;
  int batch = 1;
  bool prefix_fork = true;
  eval::CampaignResult result;
};

}  // namespace

int main() {
  const auto bench_t0 = std::chrono::steady_clock::now();
  // Each arm sets cfg.batch / cfg.prefix_fork directly; inherited env
  // overrides would silently force every arm onto one path.
  unsetenv("LLMFI_PREFIX_FORK");
  unsetenv("LLMFI_BATCH");

  auto& zoo = benchutil::shared_zoo();
  // Math-with-CoT runs the most passes per trial, the regime where both
  // the prefix fork and batched decode have work to save.
  const auto kind = data::TaskKind::MathGsm;
  const auto& spec = eval::workload(kind);
  const auto& eval_set = zoo.task(kind).eval;
  const auto& vocab = zoo.vocab();
  model::InferenceModel engine(zoo.get("qilin"),
                               benchutil::default_precision());

  auto cfg = benchutil::default_campaign(core::FaultModel::Comp1Bit,
                                         /*default_trials=*/200,
                                         /*default_inputs=*/8);

  std::vector<Arm> arms = {
      {"seq fork-off", 1, false, {}},
      {"seq fork-on", 1, true, {}},
      {"batch 2", 2, true, {}},
      {"batch 4", 4, true, {}},
      {"batch 8", 8, true, {}},
  };
  for (auto& arm : arms) {
    cfg.batch = arm.batch;
    cfg.prefix_fork = arm.prefix_fork;
    arm.result = eval::run_campaign_on(engine, vocab, eval_set, spec, cfg);
  }

  // Recorder overhead gate (DESIGN.md §16): the fault flight recorder
  // must cost < 3% of recorder-off decode throughput at batch 4.
  // Best-of-3 per arm damps scheduler/allocator noise — a single run's
  // jitter on this tiny model exceeds the recorder's real cost.
  cfg.batch = 4;
  cfg.prefix_fork = true;
  double rec_off_tok_s = 0.0, rec_on_tok_s = 0.0;
  eval::CampaignResult recorder_result;
  for (int rep = 0; rep < 3; ++rep) {
    const auto r = eval::run_campaign_on(engine, vocab, eval_set, spec, cfg);
    const double tok_s =
        static_cast<double>(r.faulty_passes - r.prefix_skipped_passes) /
        r.total_runtime_sec;
    rec_off_tok_s = std::max(rec_off_tok_s, tok_s);
  }
  obs::recorder_start();
  for (int rep = 0; rep < 3; ++rep) {
    auto r = eval::run_campaign_on(engine, vocab, eval_set, spec, cfg);
    const double tok_s =
        static_cast<double>(r.faulty_passes - r.prefix_skipped_passes) /
        r.total_runtime_sec;
    rec_on_tok_s = std::max(rec_on_tok_s, tok_s);
    recorder_result = std::move(r);
  }
  obs::recorder_stop();
  obs::recorder_clear();
  const double recorder_overhead =
      rec_off_tok_s > 0.0 ? 1.0 - rec_on_tok_s / rec_off_tok_s : 0.0;
  const bool recorder_ok = recorder_overhead <= 0.03;

  // Identity gate: every arm must reproduce the sequential fork-off
  // outcomes exactly (the determinism contract of DESIGN.md §§9-10) —
  // including the recorder-on arm, whose events must never feed back
  // into results.
  const auto& ref = arms.front().result;
  const std::string& metric = spec.metrics.front().name;
  bool identical = true;
  const auto matches_ref = [&](const eval::CampaignResult& r) {
    return r.masked == ref.masked && r.sdc_subtle == ref.sdc_subtle &&
           r.sdc_distorted == ref.sdc_distorted &&
           r.faulty_hits == ref.faulty_hits &&
           r.faulty_passes == ref.faulty_passes &&
           r.faulty_mean(metric) == ref.faulty_mean(metric);
  };
  for (const auto& arm : arms) {
    identical = identical && matches_ref(arm.result);
  }
  identical = identical && matches_ref(recorder_result);

  const double trials_s_ref = cfg.trials / ref.total_runtime_sec;
  const double passes_per_trial =
      static_cast<double>(ref.faulty_passes) / cfg.trials;

  report::Table t("serve throughput: qilin / " + spec.dataset +
                  " / 1bit-comp / " + std::to_string(cfg.trials) +
                  " trials");
  t.header({"arm", "trials/s", "speedup", "tok/s effective",
            "tok/s executed", "skipped passes", "occupancy"});
  for (const auto& arm : arms) {
    const auto& r = arm.result;
    const double trials_s = cfg.trials / r.total_runtime_sec;
    // Effective throughput counts skipped passes as served (the campaign
    // got their tokens for free); executed counts only real forwards.
    const double tok_eff =
        static_cast<double>(r.faulty_passes) / r.total_runtime_sec;
    const double tok_exec =
        static_cast<double>(r.faulty_passes - r.prefix_skipped_passes) /
        r.total_runtime_sec;
    t.row({arm.name, report::fmt(trials_s),
           report::fmt(trials_s / trials_s_ref), report::fmt(tok_eff),
           report::fmt(tok_exec),
           std::to_string(r.prefix_skipped_passes) + "/" +
               std::to_string(r.faulty_passes),
           r.serve_stats.active
               ? report::fmt(r.serve_stats.mean_batch_occupancy())
               : std::string("-")});
  }
  t.row({"passes/trial", report::fmt(passes_per_trial), "", "", "", "", ""});
  t.row({"outcomes identical", benchutil::check(identical), "", "", "", "",
         ""});
  t.row({"recorder overhead",
         report::fmt(recorder_overhead * 100.0) + "% (" +
             report::fmt(rec_off_tok_s) + " -> " + report::fmt(rec_on_tok_s) +
             " tok/s)",
         benchutil::check(recorder_ok), "", "", "", ""});
  t.print(std::cout);
  std::printf("expected shape: batch >= 4 reaches >= 1.5x trials/s over "
              "seq fork-off once passes/trial >= 8; outcomes identical "
              "must be yes; recorder overhead must stay <= 3%%.\n");

  std::filesystem::create_directories("bench_logs");
  std::ofstream json("bench_logs/BENCH_serve.json");
  const double bench_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_t0)
          .count();
  json << "{\n"
       << "  \"meta\": " << report::bench_metadata(bench_sec).json() << ",\n"
       << "  \"model\": \"qilin\",\n"
       << "  \"dataset\": \"" << spec.dataset << "\",\n"
       << "  \"fault\": \"1bit-comp\",\n"
       << "  \"trials\": " << cfg.trials << ",\n"
       << "  \"inputs\": " << cfg.n_inputs << ",\n"
       << "  \"threads\": " << cfg.threads << ",\n"
       << "  \"passes_per_trial\": " << passes_per_trial << ",\n"
       << "  \"arms\": [\n";
  for (size_t i = 0; i < arms.size(); ++i) {
    const auto& r = arms[i].result;
    const double trials_s = cfg.trials / r.total_runtime_sec;
    json << "    {\"name\": \"" << arms[i].name << "\", "
         << "\"batch\": " << arms[i].batch << ", "
         << "\"prefix_fork\": " << (arms[i].prefix_fork ? "true" : "false")
         << ", "
         << "\"trials_per_s\": " << trials_s << ", "
         << "\"speedup\": " << trials_s / trials_s_ref << ", "
         << "\"tok_per_s_effective\": "
         << static_cast<double>(r.faulty_passes) / r.total_runtime_sec
         << ", "
         << "\"tok_per_s_executed\": "
         << static_cast<double>(r.faulty_passes - r.prefix_skipped_passes) /
                r.total_runtime_sec
         << ", "
         << "\"prefix_skipped_passes\": " << r.prefix_skipped_passes << ", "
         << "\"faulty_passes\": " << r.faulty_passes << ", "
         << "\"mean_batch_occupancy\": "
         << r.serve_stats.mean_batch_occupancy() << ", "
         << "\"batch_backfills\": " << r.serve_stats.backfills << "}"
         << (i + 1 < arms.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"recorder\": {\"tok_per_s_off\": " << rec_off_tok_s
       << ", \"tok_per_s_on\": " << rec_on_tok_s
       << ", \"overhead_frac\": " << recorder_overhead
       << ", \"within_3pct\": " << (recorder_ok ? "true" : "false")
       << "},\n"
       << "  \"outcomes_identical\": " << (identical ? "true" : "false")
       << "\n}\n";
  return identical && recorder_ok ? 0 : 1;
}
