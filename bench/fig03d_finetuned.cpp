// Fig 3(d) / Observation #4: fine-tuned task-specific models vs their
// general-purpose base under memory faults. The paper finds the
// fine-tuned Llama3.1-Summarizer more resilient than Llama3.1-8B,
// attributing it to fine-tuning reinforcing output structure/fluency.
// Here: alma (translation FT of aquila) and summarizer (summarization
// FT of aquila) against aquila itself.

#include "common.h"

using namespace llmfi;

int main() {
  auto& zoo = benchutil::shared_zoo();
  struct Cell {
    data::TaskKind kind;
    const char* model;
    const char* role;
  };
  const std::vector<Cell> cells = {
      {data::TaskKind::Translation, "aquila", "base"},
      {data::TaskKind::Translation, "alma", "fine-tuned"},
      {data::TaskKind::Summarization, "aquila", "base"},
      {data::TaskKind::Summarization, "summarizer", "fine-tuned"},
  };

  report::Table t("Fig 3(d): fine-tuned vs general-purpose under "
                  "2bits-mem");
  t.header({"dataset", "model", "role", "baseline", "faulty",
            "normalized [95% CI]", "distorted"});

  for (const auto& cell : cells) {
    const auto& spec = eval::workload(cell.kind);
    auto cfg = benchutil::default_campaign(core::FaultModel::Mem2Bit, 120,
                                           10);
    auto r = eval::run_campaign(zoo, cell.model,
                                benchutil::default_precision(), spec, cfg);
    const std::string& metric = spec.metrics.front().name;
    t.row({spec.dataset, cell.model, cell.role,
           report::fmt(r.baseline_mean(metric)),
           report::fmt(r.faulty_mean(metric)),
           report::fmt_ratio(r.normalized(metric)),
           std::to_string(r.sdc_distorted)});
  }
  t.print(std::cout);
  std::printf("paper shape (Observation #4): the fine-tuned model's "
              "normalized performance >= its base model's on its target "
              "task under memory faults.\n");
  return 0;
}
