// Study: online fault detection & recovery, end to end.
//
// Runs the same fixed-seed campaign four ways — undetected, detect-only
// (checksum / range / stack), and stack + recovery — and reports what an
// HPC operator needs to pick an operating point:
//
//   * coverage: fraction of the undetected run's SDC trials that the
//     detector flags (same seed => identical fault plans trial-by-trial,
//     so the per-trial records line up exactly);
//   * false-positive rate: fault-free baseline inputs that trip it;
//   * per-pass overhead: extra forward passes the recovery retries cost;
//   * the headline: SDC count with recovery on vs off, which must drop.
//
// A final determinism pass re-runs the recovery campaign at 2 and 4
// worker threads and checks the outcome counts are bit-identical.

#include "common.h"

using namespace llmfi;

namespace {

struct Cell {
  std::string label;
  eval::DetectionConfig detection;
};

// Outcome fingerprint used by the thread-determinism check.
std::string fingerprint(const eval::CampaignResult& r) {
  return std::to_string(r.masked) + "/" + std::to_string(r.sdc_subtle) + "/" +
         std::to_string(r.sdc_distorted) + "/" +
         std::to_string(r.detected_recovered) + "/" +
         std::to_string(r.detected_unrecovered) + "/" +
         std::to_string(r.recovery_passes);
}

}  // namespace

int main() {
  auto& zoo = benchutil::shared_zoo();
  const auto& spec = eval::workload(data::TaskKind::McFact);
  const auto& eval_set = zoo.task(data::TaskKind::McFact).eval;
  model::InferenceModel engine(zoo.get("qilin"),
                               benchutil::default_precision());

  for (auto fault : {core::FaultModel::Comp1Bit, core::FaultModel::Mem2Bit}) {
    auto cfg = benchutil::default_campaign(fault, /*default_trials=*/120,
                                           /*default_inputs=*/10);
    cfg.keep_trial_records = true;

    std::vector<Cell> cells;
    cells.push_back({"undetected", {}});
    {
      eval::DetectionConfig d;
      d.checksum = true;
      cells.push_back({"checksum", d});
    }
    {
      eval::DetectionConfig d;
      d.range = true;
      cells.push_back({"range", d});
    }
    {
      eval::DetectionConfig d;
      d.checksum = d.range = true;
      cells.push_back({"stack", d});
    }
    {
      eval::DetectionConfig d;
      d.checksum = d.range = true;
      d.recover = true;
      cells.push_back({"stack+recovery", d});
    }

    std::vector<eval::CampaignResult> results;
    for (const auto& cell : cells) {
      auto c = cfg;
      c.detection = cell.detection;
      results.push_back(
          eval::run_campaign_on(engine, zoo.vocab(), eval_set, spec, c));
    }
    const auto& undetected = results.front();

    report::Table t("Detection & recovery: " +
                    std::string(core::fault_model_name(fault)) +
                    " (mcfact-syn, qilin-bf16, seed " +
                    std::to_string(cfg.seed) + ")");
    t.header({"mode", "masked", "sdc", "recovered", "unrecovered",
              "coverage", "false-pos", "pass overhead"});
    for (size_t ci = 0; ci < cells.size(); ++ci) {
      const auto& r = results[ci];
      // Coverage: of the trials the *undetected* campaign classified as
      // SDC, how many did this mode's detector flag? Identical seeds
      // mean record i of both campaigns is the same fault plan on the
      // same input.
      long long sdc_ref = 0, flagged = 0;
      for (size_t i = 0; i < undetected.records.size(); ++i) {
        const auto o = undetected.records[i].outcome;
        if (o != core::OutcomeClass::SdcSubtle &&
            o != core::OutcomeClass::SdcDistorted) {
          continue;
        }
        ++sdc_ref;
        if (ci > 0 && r.records[i].detections > 0) ++flagged;
      }
      t.row({cells[ci].label, std::to_string(r.masked),
             std::to_string(r.sdc_subtle + r.sdc_distorted),
             std::to_string(r.detected_recovered),
             std::to_string(r.detected_unrecovered),
             ci == 0 ? "-" : report::fmt_frac(flagged, sdc_ref),
             ci == 0 ? "-"
                     : report::fmt_frac(r.baseline_false_positives,
                                        cfg.n_inputs),
             report::fmt_frac(r.recovery_passes, r.faulty_passes)});
    }
    t.print(std::cout);

    const auto& recovered = results.back();
    const int sdc_before = undetected.sdc_subtle + undetected.sdc_distorted;
    const int sdc_after = recovered.sdc_subtle + recovered.sdc_distorted;
    std::printf("SDC count %d -> %d with stack+recovery: %s\n", sdc_before,
                sdc_after,
                benchutil::check(sdc_after < sdc_before ||
                                 (sdc_before == 0 && sdc_after == 0)));

    // Determinism: the recovery campaign must fold to identical outcome
    // counts at any thread count.
    auto c = cfg;
    c.detection = cells.back().detection;
    const std::string ref = fingerprint(recovered);
    bool identical = true;
    for (int threads : {2, 4}) {
      c.threads = threads;
      const auto rr =
          eval::run_campaign_on(engine, zoo.vocab(), eval_set, spec, c);
      identical = identical && fingerprint(rr) == ref;
    }
    std::printf("bit-identical outcomes across threads 1/2/4: %s\n\n",
                benchutil::check(identical));
  }
  return 0;
}
