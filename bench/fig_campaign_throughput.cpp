// Campaign throughput: prefill tok/s and decode tok/s of the inference
// engine, then the end-to-end trials/s effect of the baseline-prefix KV
// fork (DESIGN.md §9) on a transient greedy campaign — fork off vs on,
// same seed and config, with the outcome counts cross-checked (they must
// be identical; the fork only skips work whose outputs are known).
// Machine-readable copy goes to bench_logs/BENCH_campaign.json.

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common.h"
#include "gen/generate.h"
#include "report/bench_meta.h"

using namespace llmfi;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  const auto bench_t0 = std::chrono::steady_clock::now();
  // The A/B below toggles cfg.prefix_fork directly; an inherited env
  // override would silently force both arms onto one path.
  unsetenv("LLMFI_PREFIX_FORK");

  auto& zoo = benchutil::shared_zoo();
  // Math-with-CoT generations run the most passes per example (>= 8),
  // which is exactly the regime the prefix fork targets.
  const auto kind = data::TaskKind::MathGsm;
  const auto& spec = eval::workload(kind);
  const auto& eval_set = zoo.task(kind).eval;
  const auto& vocab = zoo.vocab();
  model::InferenceModel engine(zoo.get("qilin"),
                               benchutil::default_precision());

  // --- raw engine throughput -------------------------------------------
  std::vector<tok::TokenId> prompt = {vocab.bos()};
  const auto body = vocab.encode(eval_set.front().prompt);
  prompt.insert(prompt.end(), body.begin(), body.end());

  const int prefill_iters = 30;
  auto cache = engine.make_cache();
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < prefill_iters; ++i) {
    cache.reset();
    auto logits = engine.forward(prompt, cache, 0);
    cache.advance(static_cast<tn::Index>(prompt.size()));
  }
  const double prefill_sec = seconds_since(t0);
  const double prefill_tok_s =
      static_cast<double>(prefill_iters) *
      static_cast<double>(prompt.size()) / prefill_sec;

  const int decode_iters = 10;
  gen::GenerationConfig gcfg;
  std::int64_t decoded = 0;
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < decode_iters; ++i) {
    decoded += gen::generate(engine, prompt, gcfg).passes;
  }
  const double decode_sec = seconds_since(t0);
  const double decode_tok_s = static_cast<double>(decoded) / decode_sec;

  // --- campaign A/B: prefix fork off vs on -----------------------------
  auto cfg = benchutil::default_campaign(core::FaultModel::Comp1Bit,
                                         /*default_trials=*/200,
                                         /*default_inputs=*/8);
  cfg.prefix_fork = false;
  const auto off = eval::run_campaign_on(engine, vocab, eval_set, spec, cfg);
  cfg.prefix_fork = true;
  const auto on = eval::run_campaign_on(engine, vocab, eval_set, spec, cfg);

  const bool identical =
      off.masked == on.masked && off.sdc_subtle == on.sdc_subtle &&
      off.sdc_distorted == on.sdc_distorted &&
      off.faulty_hits == on.faulty_hits &&
      off.faulty_passes == on.faulty_passes &&
      off.faulty_mean(spec.metrics.front().name) ==
          on.faulty_mean(spec.metrics.front().name);
  const double trials_s_off = cfg.trials / off.total_runtime_sec;
  const double trials_s_on = cfg.trials / on.total_runtime_sec;
  const double speedup = trials_s_on / trials_s_off;
  const double passes_per_trial =
      static_cast<double>(off.faulty_passes) / cfg.trials;

  report::Table t("campaign throughput: qilin / " + spec.dataset +
                  " / 1bit-comp");
  t.header({"metric", "value"});
  t.row({"prefill tok/s", report::fmt(prefill_tok_s)});
  t.row({"decode tok/s", report::fmt(decode_tok_s)});
  t.row({"passes/trial", report::fmt(passes_per_trial)});
  t.row({"trials/s fork off", report::fmt(trials_s_off)});
  t.row({"trials/s fork on", report::fmt(trials_s_on)});
  t.row({"speedup", report::fmt(speedup)});
  t.row({"skipped passes (on)",
         std::to_string(on.prefix_skipped_passes) + "/" +
             std::to_string(on.faulty_passes)});
  t.row({"outcomes identical", benchutil::check(identical)});
  t.print(std::cout);
  std::printf("expected shape: speedup >= 2x once passes/trial >= 8; "
              "outcomes identical must be yes.\n");

  std::filesystem::create_directories("bench_logs");
  std::ofstream json("bench_logs/BENCH_campaign.json");
  json << "{\n"
       << "  \"meta\": "
       << report::bench_metadata(seconds_since(bench_t0)).json() << ",\n"
       << "  \"model\": \"qilin\",\n"
       << "  \"dataset\": \"" << spec.dataset << "\",\n"
       << "  \"fault\": \"1bit-comp\",\n"
       << "  \"trials\": " << cfg.trials << ",\n"
       << "  \"inputs\": " << cfg.n_inputs << ",\n"
       << "  \"threads\": " << cfg.threads << ",\n"
       << "  \"prefill_tok_per_s\": " << prefill_tok_s << ",\n"
       << "  \"decode_tok_per_s\": " << decode_tok_s << ",\n"
       << "  \"passes_per_trial\": " << passes_per_trial << ",\n"
       << "  \"trials_per_s_fork_off\": " << trials_s_off << ",\n"
       << "  \"trials_per_s_fork_on\": " << trials_s_on << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"prefix_skipped_passes\": " << on.prefix_skipped_passes
       << ",\n"
       << "  \"faulty_passes\": " << on.faulty_passes << ",\n"
       << "  \"outcomes_identical\": " << (identical ? "true" : "false")
       << "\n}\n";
  return identical ? 0 : 1;
}
