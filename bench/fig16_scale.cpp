// Fig 16: resilience across model scales within one family (the Qwen2.5
// size-sweep analog). Paper shape: no clear size-resilience trend
// (Observation #7).

#include "common.h"

using namespace llmfi;

int main() {
  auto& zoo = benchutil::shared_zoo();
  const std::vector<data::TaskKind> kinds = {data::TaskKind::McFact,
                                             data::TaskKind::Translation,
                                             data::TaskKind::QA};

  report::Table t("Fig 16: resilience vs model scale (qilin recipe)");
  t.header({"model", "params", "dataset", "fault", "normalized [95% CI]"});

  for (const std::string m :
       {"scale-xs", "scale-s", "scale-m", "scale-l", "scale-xl"}) {
    const auto params = zoo.get(m).num_params();
    for (auto kind : kinds) {
      const auto& spec = eval::workload(kind);
      for (auto fault : {core::FaultModel::Comp2Bit,
                         core::FaultModel::Mem2Bit}) {
        auto cfg = benchutil::default_campaign(fault, 40, 6);
        auto r = eval::run_campaign(zoo, m, benchutil::default_precision(), spec, cfg);
        t.row({m, std::to_string(params), spec.dataset,
               std::string(core::fault_model_name(fault)),
               report::fmt_ratio(r.normalized(spec.metrics.front().name))});
      }
    }
  }
  t.print(std::cout);
  std::printf("paper shape: normalized performance shows no monotone trend "
              "in parameter count.\n");
  return 0;
}
