// Table 2: floating-point format table, generated from the dtype traits
// (plus the quantized payload formats used in Fig 17).

#include <cmath>

#include "common.h"
#include "numerics/bitflip.h"
#include "numerics/half.h"

using namespace llmfi;

int main() {
  report::Table t("Table 2: format of data types");
  t.header({"format", "total bits", "exp bits", "mantissa bits",
            "max finite"});
  for (auto d : {num::DType::F16, num::DType::F32, num::DType::BF16,
                 num::DType::I8, num::DType::I4}) {
    const auto& info = num::dtype_info(d);
    t.row({std::string(info.name), std::to_string(info.total_bits),
           std::to_string(info.exponent_bits),
           std::to_string(info.mantissa_bits),
           report::fmt(info.max_finite, 1)});
  }
  t.print(std::cout);

  // The paper's §4.2.5 example: flipping the top exponent bit of 0.5.
  report::Table ex("MSB-exponent flip of 0.5 per dtype");
  ex.header({"dtype", "bit flipped", "0.5 becomes"});
  ex.row({"fp32", "30",
          report::fmt(num::flip_float_bit(0.5f, num::DType::F32, 30), 6)});
  ex.row({"fp16", "14",
          report::fmt(num::flip_float_bit(0.5f, num::DType::F16, 14), 6)});
  ex.row({"bf16", "14",
          report::fmt(num::flip_float_bit(0.5f, num::DType::BF16, 14), 6)});
  ex.print(std::cout);
  return 0;
}
