// Ablation: activation range restriction as fault isolation.
//
// The paper's conclusions ask for "inference algorithms that reduce
// fault propagation (fault isolation)". This bench quantifies the
// classic answer — Ranger-style clamping of every linear output into a
// profiled envelope — on the math task under both fault models,
// with and without the mitigation, plus its fault-free overhead cost.

#include "common.h"
#include "core/injector.h"
#include "core/mitigation.h"

using namespace llmfi;

int main() {
  auto& zoo = benchutil::shared_zoo();
  model::InferenceModel engine(zoo.get("qilin"),
                               benchutil::default_precision());
  const auto& spec = eval::workload(data::TaskKind::MathGsm);
  const auto& eval_set = zoo.task(data::TaskKind::MathGsm).eval;
  const int trials = benchutil::env_int("LLMFI_TRIALS", 150);
  const int n_inputs = benchutil::env_int("LLMFI_INPUTS", 10);
  eval::RunOptions opt;

  // Profile the clean activation envelope on held-out prompts.
  std::vector<std::string> profile_prompts;
  for (int i = n_inputs; i < n_inputs + 10; ++i) {
    profile_prompts.push_back(eval_set[static_cast<size_t>(i)].prompt);
  }
  const auto profile =
      core::profile_activations(engine, zoo.vocab(), profile_prompts);

  // Fault-free accuracy with the restriction on (overhead check: the
  // mitigation must not break clean inference).
  core::RangeRestrictionHook guard_only(profile);
  int clean_correct = 0;
  {
    core::LinearHookGuard guard(engine, &guard_only);
    for (int i = 0; i < n_inputs; ++i) {
      auto r = eval::run_example(engine, zoo.vocab(), spec,
                                 eval_set[static_cast<size_t>(i)], opt);
      clean_correct += r.correct ? 1 : 0;
    }
  }

  report::Table t("Ablation: range restriction (gsm8k-syn, qilin-bf16)");
  t.header({"fault", "mitigation", "faulty accuracy", "SDC rate",
            "corrections/trial"});

  for (auto fault : {core::FaultModel::Comp2Bit, core::FaultModel::Mem2Bit}) {
    for (const bool mitigated : {false, true}) {
      num::Rng rng(4242);
      int correct = 0;
      std::int64_t corrections = 0;
      for (int trial = 0; trial < trials; ++trial) {
        const auto& ex = eval_set[static_cast<size_t>(trial % n_inputs)];
        num::Rng trng = rng.fork(static_cast<std::uint64_t>(trial));
        core::SamplerScope scope;
        scope.max_passes = 12;
        auto plan = core::sample_fault(fault, engine, scope, trng);

        core::RangeRestrictionHook restriction(profile);
        eval::ExampleResult res;
        if (core::is_memory_fault(fault)) {
          core::WeightCorruption wc(engine, plan);
          core::LinearHookGuard guard(engine,
                                      mitigated ? &restriction : nullptr);
          res = eval::run_example(engine, zoo.vocab(), spec, ex, opt);
        } else {
          core::ComputationalFaultInjector injector(
              plan, engine.precision().act_dtype);
          if (mitigated) restriction.set_next(&injector);
          core::LinearHookGuard guard(
              engine, mitigated ? static_cast<nn::LinearHook*>(&restriction)
                                : &injector);
          res = eval::run_example(engine, zoo.vocab(), spec, ex, opt);
        }
        correct += res.correct ? 1 : 0;
        corrections += restriction.corrections();
      }
      t.row({std::string(core::fault_model_name(fault)),
             mitigated ? "range-restricted" : "none",
             report::fmt(static_cast<double>(correct) / trials),
             report::fmt_pct(1.0 - static_cast<double>(correct) / trials),
             report::fmt(static_cast<double>(corrections) / trials, 1)});
    }
  }
  t.print(std::cout);
  std::printf("fault-free accuracy with restriction active: %.4f (must "
              "match the unprotected baseline)\n",
              static_cast<double>(clean_correct) / n_inputs);
  std::printf("expected shape: restriction recovers a large share of the "
              "SDCs caused by exponent-MSB flips at negligible cost.\n");
  return 0;
}
