// Serving tail latency under load (DESIGN.md §15): an in-process
// llmfi_serve instance (epoll HTTP/SSE front-end over the batch
// scheduler, ephemeral port) driven by the closed/open-loop load
// generator. Arms cover one closed-loop sweep plus Poisson and bursty
// open-loop arrivals — open-loop latency is measured from scheduled
// arrival (coordinated-omission safe) — and a fault arm that injects
// per-request 1bit-comp faults with the checksum detector watching.
// Clean arms verify every streamed token against the sequential
// gen::generate() oracle; any mismatch fails the bench. Machine-readable
// copy goes to bench_logs/BENCH_net.json.

#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <random>
#include <vector>

#include "common.h"
#include "core/detector.h"
#include "core/injector.h"
#include "gen/generate.h"
#include "net/loadgen.h"
#include "net/server.h"
#include "report/bench_meta.h"
#include "serve/scheduler.h"

using namespace llmfi;

namespace {

// Per-request fault/detector context; constructed and called back on the
// server's engine thread only, so the shared RNGs need no lock.
struct BenchHookCtx : net::RequestHookCtx {
  std::optional<core::ComputationalFaultInjector> injector;
  std::optional<core::ChecksumDetector> checksum;
  nn::LinearHook* head = nullptr;

  nn::LinearHook* linear_hook() override { return head; }

  std::string on_complete(const serve::Completion&) override {
    if (!checksum) return {};
    if (!checksum->triggered()) return "clean";
    obs::count("net_detector_trips_total");
    return std::string(checksum->name());
  }
};

}  // namespace

int main() {
  const auto bench_t0 = std::chrono::steady_clock::now();
  benchutil::init_obs_from_env();
  obs::metrics_start();  // net_* counters feed the JSON log

  auto& zoo = benchutil::shared_zoo();
  const auto& spec = eval::workload(data::TaskKind::MathGsm);
  const auto& eval_set = zoo.task(data::TaskKind::MathGsm).eval;
  const auto& vocab = zoo.vocab();
  model::InferenceModel engine(zoo.get("qilin"),
                               benchutil::default_precision());

  constexpr int kMaxNew = 16;
  constexpr int kSessions = 8;
  constexpr int kRequests = 64;
  constexpr int kBatch = 4;
  constexpr int kKvPages = 128;

  // Prompt set + sequential oracle (computed fault-free, up front).
  std::vector<net::LoadPrompt> prompts;
  for (size_t i = 0; i < eval_set.size() && i < 8; ++i) {
    net::LoadPrompt p;
    p.ids = eval::build_prompt(vocab, eval_set[i], /*direct_prompt=*/false);
    gen::GenerationConfig gcfg;
    gcfg.max_new_tokens = kMaxNew;
    gcfg.eos = vocab.eos();
    p.expect = gen::generate(engine, p.ids, gcfg).tokens;
    prompts.push_back(std::move(p));
  }

  // Checksum profile for the fault arm, also fault-free.
  std::vector<std::string> profile_prompts;
  for (size_t i = 0; i < eval_set.size() && i < 10; ++i) {
    profile_prompts.push_back(eval_set[i].prompt);
  }
  const core::ChecksumProfile sum_profile =
      core::profile_checksums(engine, vocab, profile_prompts);

  auto make_arm = [&](const char* name, net::ArrivalMode mode, bool verify) {
    net::LoadArmConfig cfg;
    cfg.name = name;
    cfg.mode = mode;
    cfg.sessions = kSessions;
    cfg.requests = kRequests;
    cfg.rate_hz = 64.0;
    cfg.on_sec = 0.25;
    cfg.off_sec = 0.25;
    cfg.max_new_tokens = kMaxNew;
    cfg.slo_ttft_ms = 250.0;
    cfg.slo_token_ms = 100.0;
    cfg.verify = verify;
    return cfg;
  };

  std::vector<net::LoadArmResult> arms;

  // Clean server: closed-loop plus both open-loop shapes, every streamed
  // token checked against the oracle.
  {
    auto pool = std::make_shared<nn::PagePool>(
        kKvPages, nn::PagePool::kDefaultPageRows, engine.config().d_model);
    serve::BatchEngine bengine(engine, kBatch, pool);
    serve::Scheduler sched(bengine);
    net::ServerConfig scfg;
    scfg.port = 0;
    scfg.max_new_tokens = kMaxNew;
    net::Server server(scfg, {sched, vocab, kMaxNew, {}, {}});
    server.start();
    for (const auto& [name, mode] :
         {std::pair<const char*, net::ArrivalMode>{"closed clean",
                                                   net::ArrivalMode::Closed},
          {"poisson clean", net::ArrivalMode::Poisson},
          {"bursty clean", net::ArrivalMode::Bursty}}) {
      arms.push_back(net::run_load_arm(
          "127.0.0.1", server.port(), prompts, make_arm(name, mode, true)));
    }
    server.request_drain();
    server.wait();
  }

  // Fault arm: fresh scheduler over the same engine, per-request
  // 1bit-comp injections with the checksum detector chained in front.
  // Tokens may legitimately diverge, so identity verification is off;
  // the arm exists to price detection + faults into the tail.
  double faults_injected = 0.0;
  double detector_trips = 0.0;
  {
    num::Rng rng(2025);
    std::mt19937_64 rate_rng(0x9e3779b97f4a7c15ull);
    net::HookFactory factory = [&](std::uint64_t) {
      auto ctx = std::make_unique<BenchHookCtx>();
      if (std::uniform_real_distribution<double>(0.0, 1.0)(rate_rng) < 0.5) {
        core::SamplerScope scope;
        scope.max_passes = kMaxNew;
        ctx->injector.emplace(
            core::sample_fault(core::FaultModel::Comp1Bit, engine, scope, rng),
            engine.precision().act_dtype);
        obs::count("net_faults_injected_total");
      }
      ctx->checksum.emplace(sum_profile,
                            ctx->injector ? &*ctx->injector : nullptr);
      ctx->head = &*ctx->checksum;
      return ctx;
    };
    auto pool = std::make_shared<nn::PagePool>(
        kKvPages, nn::PagePool::kDefaultPageRows, engine.config().d_model);
    serve::BatchEngine bengine(engine, kBatch, pool);
    serve::Scheduler sched(bengine);
    net::ServerConfig scfg;
    scfg.port = 0;
    scfg.max_new_tokens = kMaxNew;
    net::Server server(scfg, {sched, vocab, kMaxNew, std::move(factory), {}});
    server.start();
    arms.push_back(net::run_load_arm(
        "127.0.0.1", server.port(), prompts,
        make_arm("closed 1bit-comp+checksum", net::ArrivalMode::Closed,
                 false)));
    server.request_drain();
    server.wait();
    faults_injected =
        obs::Registry::global().counter("net_faults_injected_total").value();
    detector_trips =
        obs::Registry::global().counter("net_detector_trips_total").value();
  }

  bool identity_ok = true;
  bool complete_ok = true;
  for (const auto& r : arms) {
    identity_ok = identity_ok && r.mismatches == 0;
    complete_ok =
        complete_ok && r.errors == 0 && r.completed == r.requests;
  }

  report::Table t("net tail latency: qilin / " + spec.dataset + " / batch " +
                  std::to_string(kBatch) + " / " + std::to_string(kSessions) +
                  " sessions x " + std::to_string(kRequests) + " reqs");
  t.header({"arm", "mode", "ttft p50/p95/p99 ms", "gap p95 ms",
            "e2e p95 ms", "slo", "goodput rps", "tok/s"});
  for (const auto& r : arms) {
    t.row({r.name, r.mode,
           report::fmt(r.ttft_ms_p50) + "/" + report::fmt(r.ttft_ms_p95) +
               "/" + report::fmt(r.ttft_ms_p99),
           report::fmt(r.token_gap_ms_p95), report::fmt(r.e2e_ms_p95),
           report::fmt(r.slo_attainment), report::fmt(r.goodput_rps),
           report::fmt(r.throughput_tok_s)});
  }
  t.row({"identity (clean arms)", benchutil::check(identity_ok), "", "", "",
         "", "", ""});
  t.row({"all streams completed", benchutil::check(complete_ok), "", "", "",
         "", "", ""});
  t.row({"faults/trips", report::fmt(faults_injected) + "/" +
                             report::fmt(detector_trips),
         "", "", "", "", "", ""});
  t.print(std::cout);
  std::printf("expected shape: clean arms report 0 mismatches with slo "
              "attainment near 1; the fault arm completes every stream "
              "with detector trips <= faults injected.\n");

  std::filesystem::create_directories("bench_logs");
  std::ofstream json("bench_logs/BENCH_net.json");
  const double bench_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_t0)
          .count();
  json << "{\n"
       << "  \"bench\": \"net_latency\",\n"
       << "  \"meta\": " << report::bench_metadata(bench_sec).json() << ",\n"
       << "  \"model\": \"qilin\",\n"
       << "  \"dataset\": \"" << spec.dataset << "\",\n"
       << "  \"batch\": " << kBatch << ",\n"
       << "  \"kv_pages\": " << kKvPages << ",\n"
       << "  \"sessions\": " << kSessions << ",\n"
       << "  \"requests_per_arm\": " << kRequests << ",\n"
       << "  \"max_new_tokens\": " << kMaxNew << ",\n"
       << "  \"fault_arm\": {\"fault\": \"1bit-comp\", \"rate\": 0.5, "
       << "\"detector\": \"checksum\", \"faults_injected\": "
       << faults_injected << ", \"detector_trips\": " << detector_trips
       << "},\n"
       << "  \"arms\": [\n";
  for (size_t i = 0; i < arms.size(); ++i) {
    json << "    " << arms[i].json() << (i + 1 < arms.size() ? "," : "")
         << "\n";
  }
  json << "  ],\n"
       << "  \"identity_ok\": " << (identity_ok ? "true" : "false") << ",\n"
       << "  \"complete_ok\": " << (complete_ok ? "true" : "false") << "\n"
       << "}\n";
  return identity_ok && complete_ok ? 0 : 1;
}
