// Ablation (extends Fig 17): quantized models store two things — int
// payloads and fp16 group scales. The paper's Observation #8 rests on
// payload flips being bounded; this ablation shows that faults in the
// *scales* behave like float faults again (a scale exponent flip blows
// up a whole quantization group), quantifying how much of the quantized
// resilience comes purely from the payload representation.

#include "common.h"
#include "core/injector.h"

using namespace llmfi;

int main() {
  auto& zoo = benchutil::shared_zoo();
  const auto& spec = eval::workload(data::TaskKind::Translation);
  const auto& eval_set = zoo.task(data::TaskKind::Translation).eval;
  const auto prec = model::PrecisionConfig::for_dtype(num::DType::I4);
  const int trials = benchutil::env_int("LLMFI_TRIALS", 60);
  const int n_inputs = benchutil::env_int("LLMFI_INPUTS", 8);
  eval::RunOptions opt;

  model::InferenceModel engine(zoo.get("qilin"), prec);

  // Baselines.
  metrics::Accumulator base_bleu;
  std::vector<eval::ExampleResult> baselines;
  for (int i = 0; i < n_inputs; ++i) {
    baselines.push_back(eval::run_example(
        engine, zoo.vocab(), spec, eval_set[static_cast<size_t>(i)], opt));
    base_bleu.add(baselines.back().metrics.at("bleu"));
  }

  report::Table t("Ablation: int4 payload-bit vs fp16 scale-bit memory "
                  "faults (wmt16-syn, qilin-int4)");
  t.header({"fault target", "baseline bleu", "faulty bleu", "normalized",
            "changed outputs"});

  for (const bool scale_fault : {false, true}) {
    metrics::Accumulator faulty_bleu;
    int changed = 0;
    num::Rng rng(9091);
    for (int trial = 0; trial < trials; ++trial) {
      const int ei = trial % n_inputs;
      num::Rng trng = rng.fork(static_cast<std::uint64_t>(trial));
      core::SamplerScope scope;
      auto plan = core::sample_fault(core::FaultModel::Mem2Bit, engine,
                                     scope, trng);
      eval::ExampleResult faulty;
      if (!scale_fault) {
        core::WeightCorruption guard(engine, plan);
        faulty = eval::run_example(engine, zoo.vocab(), spec,
                                   eval_set[static_cast<size_t>(ei)], opt);
      } else {
        // Flip two bits in the fp16 scale of the group holding the
        // sampled element, then restore (XOR involution).
        auto& w = *engine.linear_layers()[static_cast<size_t>(
                                              plan.layer_index)]
                       .weights;
        auto* q = w.quantized();
        int bits_arr[2] = {
            static_cast<int>(trng.uniform_u64(16)),
            0,
        };
        do {
          bits_arr[1] = static_cast<int>(trng.uniform_u64(16));
        } while (bits_arr[1] == bits_arr[0]);
        q->flip_scale_bits(plan.weight_row, plan.weight_col, bits_arr);
        w.refresh_group(plan.weight_row, plan.weight_col);
        faulty = eval::run_example(engine, zoo.vocab(), spec,
                                   eval_set[static_cast<size_t>(ei)], opt);
        q->flip_scale_bits(plan.weight_row, plan.weight_col, bits_arr);
        w.refresh_group(plan.weight_row, plan.weight_col);
      }
      faulty_bleu.add(faulty.metrics.at("bleu"));
      if (faulty.output != baselines[static_cast<size_t>(ei)].output) {
        ++changed;
      }
    }
    t.row({scale_fault ? "fp16 group scale" : "int4 payload",
           report::fmt(base_bleu.mean()), report::fmt(faulty_bleu.mean()),
           report::fmt(faulty_bleu.mean() /
                       std::max(1e-9, base_bleu.mean())),
           std::to_string(changed) + "/" + std::to_string(trials)});
  }
  t.print(std::cout);
  std::printf("expected shape: payload faults ~harmless (Obs #8); scale "
              "faults reintroduce float-style vulnerability.\n");
  return 0;
}
