// Fig 8: SDC breakdown into distorted vs subtly-wrong outputs on the
// math task (qilin & falco under all three fault models). Subtly wrong
// outputs dominate; distorted outputs concentrate under memory faults.

#include "common.h"

using namespace llmfi;

int main() {
  auto& zoo = benchutil::shared_zoo();
  const auto& spec = eval::workload(data::TaskKind::MathGsm);

  report::Table t("Fig 8: SDC breakdown (gsm8k-syn)");
  t.header({"model", "fault", "trials", "masked", "SDC subtle",
            "SDC distorted", "distorted share of SDCs"});

  for (const std::string m : {"qilin", "falco"}) {
    for (auto fault : {core::FaultModel::Comp1Bit,
                       core::FaultModel::Comp2Bit,
                       core::FaultModel::Mem2Bit}) {
      auto cfg = benchutil::default_campaign(fault, 80, 8);
      auto r = eval::run_campaign(zoo, m, benchutil::default_precision(), spec, cfg);
      const int sdcs = r.sdc_subtle + r.sdc_distorted;
      t.row({m, std::string(core::fault_model_name(fault)),
             std::to_string(r.trials()), std::to_string(r.masked),
             std::to_string(r.sdc_subtle), std::to_string(r.sdc_distorted),
             sdcs ? report::fmt_pct(static_cast<double>(r.sdc_distorted) /
                                    sdcs)
                  : "n/a"});
    }
  }
  t.print(std::cout);
  std::printf("paper shape: most SDCs are subtly wrong; distorted outputs "
              "are rare under computational faults (<~1%%) and more common "
              "under memory faults.\n");
  return 0;
}
