// Fig 10: proportion of *distorted* outputs grouped by the highest
// flipped bit (gsm8k-syn). Only the top exponent bits can distort;
// mantissa bits never do.

#include "common.h"

using namespace llmfi;

int main() {
  auto& zoo = benchutil::shared_zoo();
  const auto& spec = eval::workload(data::TaskKind::MathGsm);

  report::Table t(
      "Fig 10: distorted outputs by highest flipped bit (gsm8k-syn)");
  t.header({"model", "fault", "bit", "trials@bit", "distorted",
            "share of all distorted outputs"});

  for (const std::string m : {"qilin", "falco"}) {
    for (auto fault : {core::FaultModel::Comp2Bit,
                       core::FaultModel::Mem2Bit}) {
      auto cfg = benchutil::default_campaign(fault, 120, 8);
      cfg.seed += 1;  // independent sample from Fig 9
      auto r = eval::run_campaign(zoo, m, benchutil::default_precision(), spec, cfg);
      int total_distorted = 0;
      int mantissa_distorted = 0;
      for (const auto& [bit, counts] : r.by_highest_bit) {
        total_distorted += counts[2];
        if (bit < 7) mantissa_distorted += counts[2];  // bf16 mantissa
      }
      for (const auto& [bit, counts] : r.by_highest_bit) {
        if (counts[2] == 0) continue;
        const int n_at_bit = counts[0] + counts[1] + counts[2];
        t.row({m, std::string(core::fault_model_name(fault)),
               std::to_string(bit), std::to_string(n_at_bit),
               std::to_string(counts[2]),
               total_distorted
                   ? report::fmt_pct(static_cast<double>(counts[2]) /
                                     total_distorted)
                   : "n/a"});
      }
      std::printf("%s/%s: distorted from mantissa-bit flips: %d (paper "
                  "shape: 0)\n",
                  m.c_str(),
                  std::string(core::fault_model_name(fault)).c_str(),
                  mantissa_distorted);
    }
  }
  t.print(std::cout);
  return 0;
}
