// Tensor-parallel fault propagation (DESIGN.md §14): how a bit flipped
// in a shard's partial sum (tp-partial) or mid-reduction (tp-reduce)
// propagates, against the single-device 1bit-comp baseline on the same
// model/workload/trial budget. The tp models flip pre-rounding fp32
// register state in the two row-parallel products only, so their
// site population and bit width (32) differ from comp's — the
// comparison is outcome *distribution*, not trial-by-trial. Identity
// gate: a tp-partial campaign must be byte-identical at TP=1 and TP=2
// (sharding reassigns work, never bits). Machine-readable copy goes to
// bench_logs/BENCH_tp_propagation.json.

#include <chrono>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common.h"
#include "report/bench_meta.h"

using namespace llmfi;

namespace {

struct Arm {
  core::FaultModel fault;
  eval::CampaignResult result;
};

}  // namespace

int main() {
  const auto bench_t0 = std::chrono::steady_clock::now();
  auto& zoo = benchutil::shared_zoo();
  const auto kind = data::TaskKind::QA;
  const auto& spec = eval::workload(kind);
  const auto& eval_set = zoo.task(kind).eval;
  const auto& vocab = zoo.vocab();
  model::InferenceModel engine(zoo.get("qilin"),
                               benchutil::default_precision());

  std::vector<Arm> arms = {{core::FaultModel::Comp1Bit, {}},
                           {core::FaultModel::TpPartial, {}},
                           {core::FaultModel::TpReduce, {}}};
  for (auto& arm : arms) {
    auto cfg = benchutil::default_campaign(arm.fault, /*default_trials=*/150,
                                           /*default_inputs=*/8);
    arm.result = eval::run_campaign_on(engine, vocab, eval_set, spec, cfg);
  }

  // Identity gate: rerun the tp-partial campaign sharded — TP only
  // changes which thread computes a segment, never the outcome bits.
  auto cfg_tp2 = benchutil::default_campaign(core::FaultModel::TpPartial,
                                             /*default_trials=*/150,
                                             /*default_inputs=*/8);
  cfg_tp2.tp = 2;
  const auto tp2 = eval::run_campaign_on(engine, vocab, eval_set, spec,
                                         cfg_tp2);
  const auto& tp1 = arms[1].result;
  const bool identical = tp2.masked == tp1.masked &&
                         tp2.sdc_subtle == tp1.sdc_subtle &&
                         tp2.sdc_distorted == tp1.sdc_distorted &&
                         tp2.by_highest_bit == tp1.by_highest_bit &&
                         tp2.faulty_hits == tp1.faulty_hits;

  const std::string& metric = spec.metrics.front().name;
  report::Table t("tp fault propagation: qilin / " + spec.dataset + " / " +
                  std::to_string(arms[0].result.trials()) + " trials/arm");
  t.header({"fault", "masked", "sdc-subtle", "sdc-distorted", "sdc rate",
            "normalized " + metric});
  for (const auto& arm : arms) {
    const auto& r = arm.result;
    t.row({std::string(core::fault_model_name(arm.fault)),
           std::to_string(r.masked), std::to_string(r.sdc_subtle),
           std::to_string(r.sdc_distorted), report::fmt(r.sdc_rate()),
           report::fmt_ratio(r.normalized(metric))});
  }
  t.row({"tp1 == tp2 outcomes", benchutil::check(identical), "", "", "", ""});
  t.print(std::cout);
  std::printf("expected shape: tp faults flip fp32 partial state, so their "
              "high-exponent flips (bits 24-30) drive SDCs the way comp's "
              "exponent flips do; tp-reduce lands later in the fold and "
              "masks at least as often as tp-partial; identity must be "
              "yes.\n");

  std::filesystem::create_directories("bench_logs");
  std::ofstream json("bench_logs/BENCH_tp_propagation.json");
  const double bench_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_t0)
          .count();
  json << "{\n"
       << "  \"meta\": " << report::bench_metadata(bench_sec).json() << ",\n"
       << "  \"model\": \"qilin\",\n"
       << "  \"dataset\": \"" << spec.dataset << "\",\n"
       << "  \"arms\": [\n";
  for (size_t i = 0; i < arms.size(); ++i) {
    const auto& r = arms[i].result;
    json << "    {\"fault\": \"" << core::fault_model_name(arms[i].fault)
         << "\", "
         << "\"trials\": " << r.trials() << ", "
         << "\"masked\": " << r.masked << ", "
         << "\"sdc_subtle\": " << r.sdc_subtle << ", "
         << "\"sdc_distorted\": " << r.sdc_distorted << ", "
         << "\"sdc_rate\": " << r.sdc_rate() << ", "
         << "\"by_highest_bit\": {";
    bool first = true;
    for (const auto& [bit, counts] : r.by_highest_bit) {
      json << (first ? "" : ", ") << "\"" << bit << "\": ["
           << counts[0] << ", " << counts[1] << ", " << counts[2] << "]";
      first = false;
    }
    json << "}}" << (i + 1 < arms.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"tp1_tp2_identical\": " << (identical ? "true" : "false")
       << "\n}\n";
  return identical ? 0 : 1;
}
