// Fig 13: value distributions of weights and neurons (activations) in
// the three general-purpose models — the paper examines the last block's
// down_proj. Differing spreads explain the family resilience gap
// (Observation #3: the widest distribution tolerates bit-flips best).

#include "common.h"
#include "core/tracer.h"
#include "tensor/ops.h"

using namespace llmfi;

int main() {
  auto& zoo = benchutil::shared_zoo();
  const auto& vocab = zoo.vocab();
  const auto& ex = zoo.task(data::TaskKind::Translation).eval.front();

  report::Table stats("Fig 13: down_proj (last block) value statistics");
  stats.header({"model", "tensor", "mean", "stddev", "min", "max"});

  report::Table hist("Fig 13: weight histogram (last-block down_proj)");
  {
    std::vector<std::string> h = {"bin"};
    for (const auto& m : {"aquila", "qilin", "falco"}) h.emplace_back(m);
    hist.header(h);
  }
  constexpr int kBins = 21;
  constexpr float kLo = -0.5f, kHi = 0.5f;
  std::vector<std::vector<tn::Index>> histograms;

  for (const std::string name : {"aquila", "qilin", "falco"}) {
    const auto& w = zoo.get(name);
    const auto& down = w.blocks.back().down;
    const auto ws = tn::value_stats(down);
    stats.row({name, "weights", report::fmt(ws.mean, 5),
               report::fmt(ws.stddev, 5), report::fmt(ws.min, 4),
               report::fmt(ws.max, 4)});

    // Neuron (activation) distribution: capture the same layer's output
    // over one prompt.
    model::InferenceModel engine(w, {});
    std::vector<tok::TokenId> prompt = {vocab.bos()};
    const auto body = vocab.encode(ex.prompt);
    prompt.insert(prompt.end(), body.begin(), body.end());
    const auto captured = core::capture_layer_outputs(engine, prompt);
    const nn::LinearId target{w.config.n_layers - 1,
                              nn::LayerKind::DownProj, -1};
    for (const auto& layer : captured) {
      if (layer.id == target) {
        const auto ns = tn::value_stats(layer.output);
        stats.row({name, "neurons", report::fmt(ns.mean, 5),
                   report::fmt(ns.stddev, 5), report::fmt(ns.min, 4),
                   report::fmt(ns.max, 4)});
      }
    }
    histograms.push_back(tn::histogram(down.flat(), kLo, kHi, kBins));
  }

  for (int b = 0; b < kBins; ++b) {
    const float center =
        kLo + (static_cast<float>(b) + 0.5f) * (kHi - kLo) / kBins;
    std::vector<std::string> row = {report::fmt(center, 3)};
    for (const auto& h : histograms) {
      row.push_back(std::to_string(h[static_cast<size_t>(b)]));
    }
    hist.row(row);
  }
  stats.print(std::cout);
  hist.print(std::cout);
  return 0;
}
