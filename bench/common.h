#pragma once
// Shared plumbing for the per-figure bench binaries.
//
// Every binary honors four environment knobs so campaigns can be scaled
// from smoke-test size to paper size without recompiling:
//   LLMFI_TRIALS  — FI trials per campaign cell (default per bench)
//   LLMFI_INPUTS  — evaluation inputs cycled per cell
//   LLMFI_SEED    — campaign seed (0 is a valid seed)
//   LLMFI_THREADS — worker threads for the trial loop (default 1).
//                   Results are bit-identical for any value: each worker
//                   owns a private engine replica and outcomes reduce in
//                   trial order. Raise it to the core count to cut
//                   campaign wall-clock near-linearly.
// LLMFI_PREFIX_FORK — overrides CampaignConfig::prefix_fork when set
//                   ("0" disables the baseline-prefix KV fork fast path,
//                   anything else enables it). Results are bit-identical
//                   either way; fig_campaign_throughput unsets it to
//                   keep its own A/B comparison honest.
// LLMFI_BATCH     — overrides CampaignConfig::batch when set to an
//                   integer >= 1: trials route through the
//                   continuous-batching serve scheduler, up to that many
//                   decoding per forward pass (DESIGN.md §10). Results
//                   are bit-identical for any value; ineligible
//                   campaigns fall back to the sequential loop.
//                   fig_serve_throughput unsets it for its own A/B.
// LLMFI_TP        — overrides CampaignConfig::tp when set to an integer
//                   >= 1: every engine shards its per-block projections
//                   across that many threads (DESIGN.md §14). Results
//                   are byte-identical for any value; note threads x tp
//                   compute threads run concurrently, so size the
//                   product to the core count.
// Observability knobs (DESIGN.md §11) — campaigns are byte-identical
// with these on or off; they only watch:
// LLMFI_TRACE     — write a Chrome trace-event JSON (Perfetto-loadable)
//                   of phase spans to the named file. Armed once per
//                   process by benchutil::init_obs_from_env; llmfi_cli
//                   exposes --trace.
// LLMFI_METRICS   — export the obs metrics registry to the named file:
//                   .prom/.txt gets Prometheus text, anything else JSON.
//                   llmfi_cli exposes --metrics.
// LLMFI_PROGRESS  — periodic campaign progress line on stderr ("0"
//                   disables, anything else enables; overrides
//                   CampaignConfig::progress). llmfi_cli: --progress.
// Models come from the shared zoo cache ($LLMFI_MODEL_CACHE or
// ./model_cache); missing checkpoints are trained on demand.

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "eval/campaign.h"
#include "eval/model_zoo.h"
#include "obs/obs.h"
#include "report/table.h"

namespace llmfi::benchutil {

// Build-type tag stamped into bench logs ("Release" when NDEBUG was
// defined for this TU, "DEBUG" otherwise).
inline const char* build_type_tag() {
#ifdef NDEBUG
  return "Release";
#else
  return "DEBUG";
#endif
}

// Benches measure runtime performance; a no-NDEBUG build (-O0 default,
// asserts live) produces numbers an order of magnitude off that must
// not land in bench_logs looking like real evidence. Refuse to run
// unless LLMFI_ALLOW_DEBUG_BENCH=1 explicitly overrides — and then warn
// loudly so the log's origin is self-incriminating (the JSON meta also
// carries build_type_tag()).
inline void require_release_build() {
#ifndef NDEBUG
  const char* allow = std::getenv("LLMFI_ALLOW_DEBUG_BENCH");
  if (allow == nullptr || std::string(allow) != "1") {
    std::fprintf(stderr,
                 "llmfi: refusing to bench a non-Release build (NDEBUG "
                 "unset). Reconfigure with -DCMAKE_BUILD_TYPE=Release, or "
                 "set LLMFI_ALLOW_DEBUG_BENCH=1 to override.\n");
    std::exit(3);
  }
  std::fprintf(stderr,
               "llmfi: WARNING: benching a DEBUG build "
               "(LLMFI_ALLOW_DEBUG_BENCH=1); numbers are not comparable "
               "to Release logs.\n");
#endif
}

// LLMFI_TRACE / LLMFI_METRICS plumbing shared by every bench binary:
// armed once per process (first default_campaign() call) and written out
// at exit. No-op when neither knob is set.
inline obs::EnvConfig& obs_env_config() {
  static obs::EnvConfig cfg;
  return cfg;
}

inline void init_obs_from_env() {
  static const bool once = [] {
    require_release_build();
    obs_env_config() = obs::init_from_env();
    const auto& cfg = obs_env_config();
    if (cfg.trace_path || cfg.metrics_path) {
      std::atexit(+[] { obs::write_outputs(obs_env_config()); });
    }
    return true;
  }();
  (void)once;
}

// Non-negative integer knob from the environment. Unset (or empty) means
// the fallback; anything unparseable — junk, trailing garbage, negative,
// out of int range — aborts loudly instead of being silently swallowed
// as the fallback. 0 is a legal value (LLMFI_SEED=0 is a real seed).
inline int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (errno != 0 || end == v || *end != '\0' || parsed < 0 ||
      parsed > INT_MAX) {
    std::fprintf(stderr,
                 "llmfi: %s=\"%s\" is not a non-negative integer\n", name, v);
    std::exit(2);
  }
  return static_cast<int>(parsed);
}

inline eval::Zoo& shared_zoo() {
  static eval::Zoo zoo;
  return zoo;
}

// Campaigns run the models in bf16 by default, matching the serving
// dtype of the paper's models (HF loads Llama/Qwen/Falcon in bfloat16);
// with 16-bit storage the exponent MSB is bit 14, exactly as in the
// paper's Figs 9-10. Dtype-comparison benches override this.
inline model::PrecisionConfig default_precision() {
  return model::PrecisionConfig::for_dtype(num::DType::BF16);
}

inline eval::CampaignConfig default_campaign(core::FaultModel fault,
                                             int default_trials = 60,
                                             int default_inputs = 8) {
  init_obs_from_env();
  eval::CampaignConfig cfg;
  cfg.fault = fault;
  cfg.trials = env_int("LLMFI_TRIALS", default_trials);
  cfg.n_inputs = env_int("LLMFI_INPUTS", default_inputs);
  cfg.seed = static_cast<std::uint64_t>(env_int("LLMFI_SEED", 2025));
  cfg.threads = env_int("LLMFI_THREADS", 1);
  return cfg;
}

inline const char* check(bool ok) { return ok ? "yes" : "NO"; }

// Standard row for a campaign cell: primary-metric normalized
// performance with CI plus the outcome split.
inline void add_campaign_row(report::Table& t, const std::string& dataset,
                             const std::string& model,
                             core::FaultModel fault,
                             const eval::WorkloadSpec& spec,
                             const eval::CampaignResult& r) {
  const std::string& metric = spec.metrics.front().name;
  t.row({dataset, model, std::string(core::fault_model_name(fault)), metric,
         report::fmt(r.baseline_mean(metric)),
         report::fmt(r.faulty_mean(metric)),
         report::fmt_ratio(r.normalized(metric)),
         std::to_string(r.masked) + "/" + std::to_string(r.sdc_subtle) +
             "/" + std::to_string(r.sdc_distorted)});
}

inline std::vector<std::string> campaign_header() {
  return {"dataset", "model",      "fault",      "metric",
          "baseline", "faulty",    "normalized [95% CI]",
          "masked/subtle/distorted"};
}

}  // namespace llmfi::benchutil
