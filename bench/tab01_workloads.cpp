// Table 1: the workload matrix — tasks, datasets, metrics, and models.

#include "common.h"

using namespace llmfi;

int main() {
  report::Table t("Table 1: selected LLM workloads and metrics");
  t.header({"dataset", "task-style", "metrics", "models"});
  for (const auto& spec : eval::all_workloads()) {
    std::string metrics;
    for (const auto& m : spec.metrics) {
      if (!metrics.empty()) metrics += "+";
      metrics += m.name;
    }
    std::string models;
    for (const auto& m : spec.default_models) {
      if (!models.empty()) models += ",";
      models += m;
    }
    t.row({spec.dataset,
           spec.style == data::TaskStyle::MultipleChoice ? "multiple-choice"
                                                         : "generative",
           metrics, models});
  }
  t.print(std::cout);

  // Eval-subset sizes (tinyBenchmarks-style fixed 100-input subsets).
  auto& zoo = benchutil::shared_zoo();
  report::Table sizes("Evaluation subsets");
  sizes.header({"dataset", "eval inputs", "train sequences"});
  for (const auto& spec : eval::all_workloads()) {
    const auto& td = zoo.task(spec.kind);
    sizes.row({spec.dataset, std::to_string(td.eval.size()),
               std::to_string(td.train.size())});
  }
  sizes.print(std::cout);
  return 0;
}
