// Fig 20: Chain-of-Thought vs direct answer under fault injection on the
// math task. Computational faults are sampled only from the reasoning
// segment (paper §4.3.2); memory faults persist for the whole inference.
// Paper shape (Observation #10): CoT is more resilient — the model can
// recover from corrupted reasoning tokens, while faults in direct answer
// generation cannot be masked.

#include "common.h"

using namespace llmfi;

int main() {
  auto& zoo = benchutil::shared_zoo();
  const auto& spec = eval::workload(data::TaskKind::MathGsm);

  report::Table t("Fig 20: CoT vs direct answer (gsm8k-syn)");
  t.header({"model", "mode", "fault", "baseline acc", "faulty acc",
            "normalized [95% CI]", "recovered"});

  for (const std::string m : {"qilin", "falco"}) {
    for (const bool direct : {false, true}) {
      for (auto fault : {core::FaultModel::Comp2Bit,
                         core::FaultModel::Mem2Bit}) {
        auto cfg = benchutil::default_campaign(fault, 60, 8);
        cfg.run.direct_prompt = direct;
        cfg.keep_trial_records = true;
        if (!direct && fault == core::FaultModel::Comp2Bit) {
          // Inject only while generating reasoning tokens: exclude the
          // trailing "; answer <digits> <eos>" passes (~5 tokens).
          cfg.exclude_final_passes = 5;
        }
        auto r = eval::run_campaign(zoo, m, benchutil::default_precision(), spec, cfg);
        // Recoveries: the chain of thought changed but the final answer
        // is still correct — the paper's CoT resilience mechanism.
        int recovered = 0;
        for (const auto& rec : r.records) {
          if (rec.correct && !rec.output_matches_baseline) ++recovered;
        }
        t.row({m, direct ? "direct" : "CoT",
               std::string(core::fault_model_name(fault)),
               report::fmt(r.baseline_mean("accuracy")),
               report::fmt(r.faulty_mean("accuracy")),
               report::fmt_ratio(r.normalized("accuracy")),
               std::to_string(recovered)});
      }
    }
  }
  t.print(std::cout);
  std::printf("paper shape: CoT normalized >= direct for both fault models; "
              "computational faults in reasoning barely change the final "
              "answer (normalized ~1.0).\n");
  return 0;
}
