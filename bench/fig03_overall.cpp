// Fig 3: normalized performance after fault injection across every
// (dataset, model, fault model) cell — the study's headline matrix.
// Each cell is a statistical campaign; scale with LLMFI_TRIALS/INPUTS.

#include "common.h"

using namespace llmfi;

int main() {
  auto& zoo = benchutil::shared_zoo();
  report::Table t("Fig 3: LLM performance change after fault injection");
  t.header(benchutil::campaign_header());

  const auto faults = {core::FaultModel::Comp1Bit, core::FaultModel::Comp2Bit,
                       core::FaultModel::Mem2Bit};
  double sum_norm[3] = {0, 0, 0};
  int cells[3] = {0, 0, 0};

  for (const auto& spec : eval::all_workloads()) {
    for (const auto& model_name : spec.default_models) {
      // Fig 3 covers the three general-purpose models; fine-tuned models
      // are compared separately in Fig 3(d)/Obs #4.
      if (model_name == "alma" || model_name == "summarizer") continue;
      for (auto fault : faults) {
        auto cfg = benchutil::default_campaign(fault, /*trials=*/36,
                                               /*inputs=*/6);
        auto result = eval::run_campaign(zoo, model_name, benchutil::default_precision(), spec, cfg);
        benchutil::add_campaign_row(t, spec.dataset, model_name, fault, spec,
                                    result);
        const int fi = static_cast<int>(fault);
        sum_norm[fi] += result.normalized(spec.metrics.front().name).value;
        ++cells[fi];
      }
    }
  }
  t.print(std::cout);

  report::Table avg("Average normalized performance per fault model");
  avg.header({"fault", "mean normalized", "cells"});
  for (auto fault : faults) {
    const int fi = static_cast<int>(fault);
    avg.row({std::string(core::fault_model_name(fault)),
             report::fmt(cells[fi] ? sum_norm[fi] / cells[fi] : 0.0),
             std::to_string(cells[fi])});
  }
  avg.print(std::cout);
  std::printf("paper shape: memory faults degrade more than computational "
              "faults; average degradation a few percent.\n");
  return 0;
}
