// Runtime microbenchmarks (google-benchmark): GEMM kernels, decode
// throughput, FI hook overhead, dtype rounding, quantization.
// These are runtime-performance numbers, not model-quality numbers.

#include <benchmark/benchmark.h>

#include "core/injector.h"
#include "eval/model_zoo.h"
#include "eval/runner.h"
#include "gen/generate.h"
#include "numerics/half.h"
#include "quant/quantized_matrix.h"
#include "tensor/ops.h"

using namespace llmfi;

namespace {

tn::Tensor random_matrix(tn::Index r, tn::Index c, std::uint64_t seed) {
  num::Rng rng(seed);
  tn::Tensor t({r, c});
  for (float& v : t.flat()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

void BM_MatmulBt(benchmark::State& state) {
  const auto n = static_cast<tn::Index>(state.range(0));
  const tn::Tensor a = random_matrix(n, n, 1);
  const tn::Tensor b = random_matrix(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tn::matmul_bt(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatmulBt)->Arg(64)->Arg(128)->Arg(256);

void BM_Fp16RoundTrip(benchmark::State& state) {
  num::Rng rng(3);
  std::vector<float> values(4096);
  for (float& v : values) v = static_cast<float>(rng.normal(0.0, 10.0));
  for (auto _ : state) {
    float acc = 0.0f;
    for (float v : values) acc += num::round_to_f16(v);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_Fp16RoundTrip);

void BM_QuantizeInt4(benchmark::State& state) {
  const tn::Tensor w = random_matrix(128, 128, 4);
  for (auto _ : state) {
    quant::QuantizedMatrix q(w, num::DType::I4, 32);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_QuantizeInt4);

eval::Zoo& zoo() {
  static eval::Zoo z;
  return z;
}

void BM_GreedyDecode(benchmark::State& state) {
  model::InferenceModel engine(zoo().get("scale-xs"), {});
  const auto& vocab = zoo().vocab();
  const auto& ex = zoo().task(data::TaskKind::Translation).eval.front();
  std::vector<tok::TokenId> prompt = {vocab.bos()};
  const auto body = vocab.encode(ex.prompt);
  prompt.insert(prompt.end(), body.begin(), body.end());
  gen::GenerationConfig cfg;
  std::int64_t tokens = 0;
  for (auto _ : state) {
    auto r = gen::generate(engine, prompt, cfg);
    tokens += static_cast<std::int64_t>(r.tokens.size()) + 1;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(tokens);
  state.SetLabel("items = generated tokens");
}
BENCHMARK(BM_GreedyDecode);

// The cost of the FI hook surface itself: an armed injector that never
// fires (wrong pass index) vs no hook at all.
void BM_DecodeWithArmedInjector(benchmark::State& state) {
  model::InferenceModel engine(zoo().get("scale-xs"), {});
  const auto& vocab = zoo().vocab();
  const auto& ex = zoo().task(data::TaskKind::Translation).eval.front();
  std::vector<tok::TokenId> prompt = {vocab.bos()};
  const auto body = vocab.encode(ex.prompt);
  prompt.insert(prompt.end(), body.begin(), body.end());
  core::FaultPlan plan;
  plan.model = core::FaultModel::Comp1Bit;
  plan.layer = {0, nn::LayerKind::QProj, -1};
  plan.pass_index = 1 << 20;  // never fires
  plan.bits = {30};
  core::ComputationalFaultInjector injector(plan, num::DType::F32);
  core::LinearHookGuard guard(engine, &injector);
  gen::GenerationConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen::generate(engine, prompt, cfg));
  }
}
BENCHMARK(BM_DecodeWithArmedInjector);

void BM_WeightCorruptionGuard(benchmark::State& state) {
  model::InferenceModel engine(zoo().get("scale-xs"), {});
  core::FaultPlan plan;
  plan.model = core::FaultModel::Mem2Bit;
  plan.layer_index = 0;
  plan.layer = engine.linear_layers()[0].id;
  plan.weight_row = 1;
  plan.weight_col = 1;
  plan.bits = {30, 22};
  for (auto _ : state) {
    core::WeightCorruption guard(engine, plan);
    benchmark::DoNotOptimize(guard.new_value());
  }
}
BENCHMARK(BM_WeightCorruptionGuard);

}  // namespace

BENCHMARK_MAIN();
