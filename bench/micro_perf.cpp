// Runtime microbenchmarks (google-benchmark): GEMM kernels, decode
// throughput, FI hook overhead, dtype rounding, quantization.
// These are runtime-performance numbers, not model-quality numbers.
//
// Before the google-benchmark suite runs, main() executes the kernel
// harness: every tiered kernel (matmul_bt, fused rmsnorm+matmul,
// int8/int4 qmatmul) is gate-checked against its reference reduction
// and then timed per tier, and the per-kernel GFLOP/s land in
// bench_logs/BENCH_kernels.json (meta via report::bench_metadata). The
// harness exits nonzero if a gate fails or if the best tier does not
// clear 3x the naive matmul_bt at 256x256 in a Release build.
// LLMFI_KERNEL_HARNESS=0 skips it (CI's sanitizer jobs, filter probes).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "common.h"
#include "core/injector.h"
#include "eval/model_zoo.h"
#include "eval/runner.h"
#include "gen/generate.h"
#include "numerics/half.h"
#include "quant/qmatmul.h"
#include "quant/quantized_matrix.h"
#include "report/bench_meta.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"

using namespace llmfi;

namespace {

tn::Tensor random_matrix(tn::Index r, tn::Index c, std::uint64_t seed) {
  num::Rng rng(seed);
  tn::Tensor t({r, c});
  for (float& v : t.flat()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

// ---- tiered-kernel google-benchmarks ---------------------------------

void BM_MatmulBt(benchmark::State& state) {
  const auto n = static_cast<tn::Index>(state.range(0));
  const auto tier = static_cast<tn::KernelTier>(state.range(1));
  const tn::Tensor a = random_matrix(n, n, 1);
  const tn::Tensor b = random_matrix(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tn::matmul_bt_tier(a, b, tier));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetLabel(tn::kernel_tier_name(tier));
}

void BM_QMatmulBt(benchmark::State& state) {
  const auto n = static_cast<tn::Index>(state.range(0));
  const auto tier = static_cast<tn::KernelTier>(state.range(1));
  const auto dtype =
      state.range(2) == 4 ? num::DType::I4 : num::DType::I8;
  const tn::Tensor x = random_matrix(n, n, 1);
  const quant::QuantizedMatrix q(random_matrix(n, n, 2), dtype, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(quant::qmatmul_bt(x, q, tier));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetLabel(std::string(tn::kernel_tier_name(tier)) +
                 (dtype == num::DType::I4 ? "/i4" : "/i8"));
}

void BM_FusedRmsnormMatmul(benchmark::State& state) {
  const auto n = static_cast<tn::Index>(state.range(0));
  const auto tier = static_cast<tn::KernelTier>(state.range(1));
  const tn::Tensor x = random_matrix(4, n, 1);
  const tn::Tensor gain = random_matrix(1, n, 2);
  const tn::Tensor w0 = random_matrix(n, n, 3);
  const tn::Tensor w1 = random_matrix(n, n, 4);
  const tn::Tensor* ws[] = {&w0, &w1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tn::fused_rmsnorm_matmul_bt(x, gain, 1e-5f, ws, tier));
  }
  state.SetItemsProcessed(state.iterations() * 2 * (2 * 4 * n * n));
  state.SetLabel(tn::kernel_tier_name(tier));
}

void register_tiered_benches() {
  std::vector<tn::KernelTier> tiers = {tn::KernelTier::Reference,
                                       tn::KernelTier::Portable};
  if (tn::cpu_supports_avx2()) tiers.push_back(tn::KernelTier::Avx2);
  for (tn::KernelTier tier : tiers) {
    const auto t = static_cast<std::int64_t>(tier);
    auto* mm = benchmark::RegisterBenchmark("BM_MatmulBt", BM_MatmulBt);
    auto* fu = benchmark::RegisterBenchmark("BM_FusedRmsnormMatmul",
                                            BM_FusedRmsnormMatmul);
    auto* q8 = benchmark::RegisterBenchmark("BM_QMatmulBt", BM_QMatmulBt);
    auto* q4 = benchmark::RegisterBenchmark("BM_QMatmulBt", BM_QMatmulBt);
    for (std::int64_t n : {64, 128, 256}) {
      mm->Args({n, t});
      fu->Args({n, t});
      q8->Args({n, t, 8});
      q4->Args({n, t, 4});
    }
  }
}

// ---- dtype / model microbenches (unchanged surface) ------------------

void BM_Fp16RoundTrip(benchmark::State& state) {
  num::Rng rng(3);
  std::vector<float> values(4096);
  for (float& v : values) v = static_cast<float>(rng.normal(0.0, 10.0));
  for (auto _ : state) {
    float acc = 0.0f;
    for (float v : values) acc += num::round_to_f16(v);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_Fp16RoundTrip);

void BM_QuantizeInt4(benchmark::State& state) {
  const tn::Tensor w = random_matrix(128, 128, 4);
  for (auto _ : state) {
    quant::QuantizedMatrix q(w, num::DType::I4, 32);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_QuantizeInt4);

eval::Zoo& zoo() {
  static eval::Zoo z;
  return z;
}

void BM_GreedyDecode(benchmark::State& state) {
  model::InferenceModel engine(zoo().get("scale-xs"), {});
  const auto& vocab = zoo().vocab();
  const auto& ex = zoo().task(data::TaskKind::Translation).eval.front();
  std::vector<tok::TokenId> prompt = {vocab.bos()};
  const auto body = vocab.encode(ex.prompt);
  prompt.insert(prompt.end(), body.begin(), body.end());
  gen::GenerationConfig cfg;
  std::int64_t tokens = 0;
  for (auto _ : state) {
    auto r = gen::generate(engine, prompt, cfg);
    tokens += static_cast<std::int64_t>(r.tokens.size()) + 1;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(tokens);
  state.SetLabel("items = generated tokens");
}
BENCHMARK(BM_GreedyDecode);

// The cost of the FI hook surface itself: an armed injector that never
// fires (wrong pass index) vs no hook at all.
void BM_DecodeWithArmedInjector(benchmark::State& state) {
  model::InferenceModel engine(zoo().get("scale-xs"), {});
  const auto& vocab = zoo().vocab();
  const auto& ex = zoo().task(data::TaskKind::Translation).eval.front();
  std::vector<tok::TokenId> prompt = {vocab.bos()};
  const auto body = vocab.encode(ex.prompt);
  prompt.insert(prompt.end(), body.begin(), body.end());
  core::FaultPlan plan;
  plan.model = core::FaultModel::Comp1Bit;
  plan.layer = {0, nn::LayerKind::QProj, -1};
  plan.pass_index = 1 << 20;  // never fires
  plan.bits = {30};
  core::ComputationalFaultInjector injector(plan, num::DType::F32);
  core::LinearHookGuard guard(engine, &injector);
  gen::GenerationConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen::generate(engine, prompt, cfg));
  }
}
BENCHMARK(BM_DecodeWithArmedInjector);

void BM_WeightCorruptionGuard(benchmark::State& state) {
  model::InferenceModel engine(zoo().get("scale-xs"), {});
  core::FaultPlan plan;
  plan.model = core::FaultModel::Mem2Bit;
  plan.layer_index = 0;
  plan.layer = engine.linear_layers()[0].id;
  plan.weight_row = 1;
  plan.weight_col = 1;
  plan.bits = {30, 22};
  for (auto _ : state) {
    core::WeightCorruption guard(engine, plan);
    benchmark::DoNotOptimize(guard.new_value());
  }
}
BENCHMARK(BM_WeightCorruptionGuard);

// ---- kernel harness --------------------------------------------------
// Gate every fast kernel against its reference reduction, then time it
// and record GFLOP/s. One JSON row per (kernel, tier, size).

struct HarnessRow {
  std::string kernel;
  std::string tier;
  tn::Index m, k, n;
  double gflops = 0.0;
  double speedup_vs_reference = 0.0;
};

double time_gflops(const std::function<void()>& fn, double flop) {
  using clock = std::chrono::steady_clock;
  // Warm once, then pick a rep count targeting ~100 ms of work.
  auto t0 = clock::now();
  fn();
  double once = std::chrono::duration<double>(clock::now() - t0).count();
  int reps = once > 0 ? static_cast<int>(0.1 / once) : 1000;
  if (reps < 3) reps = 3;
  if (reps > 2000) reps = 2000;
  t0 = clock::now();
  for (int r = 0; r < reps; ++r) fn();
  const double sec =
      std::chrono::duration<double>(clock::now() - t0).count() / reps;
  return flop / sec / 1e9;
}

// Returns rows for one kernel family across tiers; aborts (exit 1) on a
// gate violation.
int run_kernel_harness() {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<tn::KernelTier> fast_tiers = {tn::KernelTier::Portable};
  if (tn::cpu_supports_avx2()) fast_tiers.push_back(tn::KernelTier::Avx2);
  const std::vector<tn::Index> sizes = {64, 128, 256};

  std::vector<HarnessRow> rows;
  bool gate_ok = true;
  double best_speedup_256 = 0.0;

  for (tn::Index n : sizes) {
    const tn::Tensor a = random_matrix(n, n, 1);
    const tn::Tensor b = random_matrix(n, n, 2);
    const double flop = 2.0 * n * n * n;

    const tn::Tensor ref = tn::matmul_bt_reference(a, b);
    const double ref_gflops =
        time_gflops([&] { benchmark::DoNotOptimize(
                        tn::matmul_bt_reference(a, b)); },
                    flop);
    rows.push_back({"matmul_bt", "reference", n, n, n, ref_gflops, 1.0});

    for (tn::KernelTier tier : fast_tiers) {
      const tn::Tensor fast = tn::matmul_bt_tier(a, b, tier);
      const auto gate = tn::check_matmul_bt_gate(a, b, ref, fast);
      if (!gate.ok()) {
        std::fprintf(stderr,
                     "kernel harness: matmul_bt %s gate FAILED at n=%lld "
                     "(%lld violations, worst excess %.3g)\n",
                     tn::kernel_tier_name(tier), static_cast<long long>(n),
                     static_cast<long long>(gate.violations),
                     gate.worst_excess);
        gate_ok = false;
        continue;
      }
      const double g = time_gflops(
          [&] { benchmark::DoNotOptimize(tn::matmul_bt_tier(a, b, tier)); },
          flop);
      const double speedup = g / ref_gflops;
      rows.push_back(
          {"matmul_bt", tn::kernel_tier_name(tier), n, n, n, g, speedup});
      if (n == 256 && speedup > best_speedup_256) best_speedup_256 = speedup;
    }

    // Quantized matmul: gate against the scalar grouped reference (same
    // reduction shape), tolerance envelope from the dequantized weight.
    for (num::DType dtype : {num::DType::I8, num::DType::I4}) {
      const quant::QuantizedMatrix q(b, dtype, 32);
      const std::string name =
          dtype == num::DType::I8 ? "qmatmul_i8" : "qmatmul_i4";
      const tn::Tensor qref =
          quant::qmatmul_bt(a, q, tn::KernelTier::Reference);
      const double qr_gflops = time_gflops(
          [&] {
            benchmark::DoNotOptimize(
                quant::qmatmul_bt(a, q, tn::KernelTier::Reference));
          },
          flop);
      rows.push_back({name, "reference", n, n, n, qr_gflops, 1.0});
      const tn::Tensor deq = q.dequantize();
      for (tn::KernelTier tier : fast_tiers) {
        const tn::Tensor fast = quant::qmatmul_bt(a, q, tier);
        const auto gate = tn::check_matmul_bt_gate(a, deq, qref, fast);
        if (!gate.ok()) {
          std::fprintf(stderr,
                       "kernel harness: %s %s gate FAILED at n=%lld\n",
                       name.c_str(), tn::kernel_tier_name(tier),
                       static_cast<long long>(n));
          gate_ok = false;
          continue;
        }
        const double g = time_gflops(
            [&] {
              benchmark::DoNotOptimize(quant::qmatmul_bt(a, q, tier));
            },
            flop);
        rows.push_back(
            {name, tn::kernel_tier_name(tier), n, n, n, g, g / qr_gflops});
      }
    }

    // Fused rmsnorm+matmul must be BIT-identical to the unfused pair at
    // every tier (same dot kernels, same norm arithmetic).
    {
      const tn::Tensor gain = random_matrix(1, n, 7);
      const tn::Tensor* ws[] = {&b};
      std::vector<tn::KernelTier> fused_tiers = {tn::KernelTier::Reference};
      fused_tiers.insert(fused_tiers.end(), fast_tiers.begin(),
                         fast_tiers.end());
      for (tn::KernelTier tier : fused_tiers) {
        const tn::Tensor h = tn::rmsnorm_rows(a, gain, 1e-5f);
        const tn::Tensor unfused = tn::matmul_bt_tier(h, b, tier);
        const auto fused =
            tn::fused_rmsnorm_matmul_bt(a, gain, 1e-5f, ws, tier);
        bool identical = true;
        for (tn::Index i = 0; i < n * n; ++i) {
          const float x = fused[0].data()[i], y = unfused.data()[i];
          if (std::memcmp(&x, &y, sizeof(float)) != 0) identical = false;
        }
        if (!identical) {
          std::fprintf(stderr,
                       "kernel harness: fused rmsnorm+matmul not "
                       "bit-identical at tier %s, n=%lld\n",
                       tn::kernel_tier_name(tier),
                       static_cast<long long>(n));
          gate_ok = false;
          continue;
        }
        const double g = time_gflops(
            [&] {
              benchmark::DoNotOptimize(
                  tn::fused_rmsnorm_matmul_bt(a, gain, 1e-5f, ws, tier));
            },
            flop);
        rows.push_back({"fused_rmsnorm_matmul", tn::kernel_tier_name(tier),
                        n, n, n, g, 0.0});
      }
    }
  }

  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  std::filesystem::create_directories("bench_logs");
  std::ofstream json("bench_logs/BENCH_kernels.json");
  json << "{\n  \"meta\": " << report::bench_metadata(secs).json() << ",\n"
       << "  \"build\": \"" << benchutil::build_type_tag() << "\",\n"
       << "  \"gate_ok\": " << (gate_ok ? "true" : "false") << ",\n"
       << "  \"kernels\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    json << "    {\"kernel\": \"" << r.kernel << "\", \"tier\": \""
         << r.tier << "\", \"m\": " << r.m << ", \"k\": " << r.k
         << ", \"n\": " << r.n << ", \"gflops\": " << r.gflops
         << ", \"speedup_vs_reference\": " << r.speedup_vs_reference
         << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();

  std::printf("kernel harness: %zu rows -> bench_logs/BENCH_kernels.json "
              "(best matmul_bt speedup at 256: %.2fx)\n",
              rows.size(), best_speedup_256);
  if (!gate_ok) return 1;
#ifdef NDEBUG
  // The acceptance floor only binds in Release: a -O0 reference loop is
  // slow enough to make any speedup number meaningless.
  if (best_speedup_256 < 3.0) {
    std::fprintf(stderr,
                 "kernel harness: best tier is only %.2fx reference at "
                 "256x256 (< 3x floor)\n",
                 best_speedup_256);
    return 1;
  }
#endif
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::require_release_build();
  // Our build type, distinct from google-benchmark's own "built as
  // DEBUG" self-report (which describes the prebuilt library binary,
  // not this code).
  std::printf("llmfi build: %s\n", benchutil::build_type_tag());
  const char* harness = std::getenv("LLMFI_KERNEL_HARNESS");
  if (harness == nullptr || std::string(harness) != "0") {
    const int rc = run_kernel_harness();
    if (rc != 0) return rc;
  }
  register_tiered_benches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
