// Example: probing MoE routing under faults with the ExpertObserver API.
//
// Runs the MoE model on one translation input, prints the clean expert
// routing per block, then corrupts one router weight (memory fault) and
// shows which token->expert assignments shift — the mechanism behind
// the paper's Fig 15 / Observation #6.
//
//   ./examples/moe_router_study

#include <cstdio>
#include <map>
#include <vector>

#include "core/injector.h"
#include "eval/model_zoo.h"
#include "eval/runner.h"

using namespace llmfi;

namespace {

class RoutingTable : public nn::ExpertObserver {
 public:
  void on_expert_selection(int block, int token_position,
                           std::span<const int> experts) override {
    auto& slot = table_[{block, token_position}];
    slot.assign(experts.begin(), experts.end());
  }
  const std::map<std::pair<int, int>, std::vector<int>>& table() const {
    return table_;
  }
  void clear() { table_.clear(); }

 private:
  std::map<std::pair<int, int>, std::vector<int>> table_;
};

}  // namespace

int main() {
  eval::Zoo zoo;
  model::InferenceModel engine(zoo.get("qilin-moe"), {});
  const auto& spec = eval::workload(data::TaskKind::Translation);
  const auto& ex = zoo.task(data::TaskKind::Translation).eval.front();
  eval::RunOptions opt;

  RoutingTable clean, faulty;
  engine.set_expert_observer(&clean);
  auto base = eval::run_example(engine, zoo.vocab(), spec, ex, opt);

  // Corrupt one router weight in block 1: flip the two top exponent bits.
  core::FaultPlan plan;
  plan.model = core::FaultModel::Mem2Bit;
  plan.layer = {1, nn::LayerKind::Router, -1};
  plan.weight_row = 2;  // router output for expert 2
  plan.weight_col = 11;
  plan.bits = {30, 29};
  auto layers = engine.linear_layers();
  for (int i = 0; i < static_cast<int>(layers.size()); ++i) {
    if (layers[static_cast<size_t>(i)].id == plan.layer) plan.layer_index = i;
  }
  engine.set_expert_observer(&faulty);
  eval::ExampleResult corrupted;
  float old_w = 0.0f, new_w = 0.0f;
  {
    core::WeightCorruption guard(engine, plan);
    old_w = guard.old_value();
    new_w = guard.new_value();
    corrupted = eval::run_example(engine, zoo.vocab(), spec, ex, opt);
  }
  engine.set_expert_observer(nullptr);

  std::printf("input:          %s\n", ex.prompt.c_str());
  std::printf("clean output:   %s\n", base.output.c_str());
  std::printf("router fault:   %s weight(2,11) %.4g -> %.4g\n",
              nn::to_string(plan.layer).c_str(),
              static_cast<double>(old_w), static_cast<double>(new_w));
  std::printf("faulty output:  %s\n\n", corrupted.output.c_str());

  int shifted = 0, total = 0;
  for (const auto& [key, experts] : clean.table()) {
    ++total;
    auto it = faulty.table().find(key);
    const bool changed = (it == faulty.table().end() || it->second != experts);
    if (changed) ++shifted;
    if (changed && key.first == 1) {
      std::printf("block %d token %2d: experts {%d,%d} -> ", key.first,
                  key.second, experts[0], experts[1]);
      if (it == faulty.table().end()) {
        std::printf("(token not generated)\n");
      } else {
        std::printf("{%d,%d}\n", it->second[0], it->second[1]);
      }
    }
  }
  std::printf("\n%d of %d (block, token) routing decisions changed\n",
              shifted, total);
  std::printf("(Observation #6: gate-layer faults change expert selection "
              "without touching any expert weights.)\n");
  return 0;
}
