// Example: assessing a translation model's resilience, end to end.
//
// Mirrors the workflow a practitioner would run on their own model:
//  1. load a fine-tuned translation model (ALMA analog) from the zoo,
//  2. measure fault-free BLEU/chrF++ on the fixed eval subset,
//  3. run memory- and computational-fault campaigns,
//  4. compare greedy vs beam decoding under faults,
//  5. print normalized performance with 95% confidence intervals.
//
//   LLMFI_TRIALS=60 ./examples/translation_resilience

#include <cstdio>
#include <iostream>

#include "eval/campaign.h"
#include "eval/model_zoo.h"
#include "report/table.h"

using namespace llmfi;

namespace {
int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const int parsed = std::atoi(v);
  return parsed > 0 ? parsed : fallback;
}
}  // namespace

int main() {
  eval::Zoo zoo;
  const auto& spec = eval::workload(data::TaskKind::Translation);
  const int trials = env_int("LLMFI_TRIALS", 40);

  report::Table t("Translation resilience (alma, wmt16-syn)");
  t.header({"fault", "search", "baseline bleu", "faulty bleu",
            "normalized bleu [95% CI]", "normalized chrf++",
            "masked/subtle/distorted"});

  for (auto fault : {core::FaultModel::Comp2Bit, core::FaultModel::Mem2Bit}) {
    for (int beams : {1, 6}) {
      eval::CampaignConfig cfg;
      cfg.fault = fault;
      cfg.trials = trials;
      cfg.n_inputs = 8;
      cfg.run.gen.num_beams = beams;
      auto r = eval::run_campaign(
          zoo, "alma",
          model::PrecisionConfig::for_dtype(num::DType::BF16), spec, cfg);
      t.row({std::string(core::fault_model_name(fault)),
             beams == 1 ? "greedy" : "beam-6",
             report::fmt(r.baseline_mean("bleu")),
             report::fmt(r.faulty_mean("bleu")),
             report::fmt_ratio(r.normalized("bleu")),
             report::fmt(r.normalized("chrf++").value),
             std::to_string(r.masked) + "/" + std::to_string(r.sdc_subtle) +
                 "/" + std::to_string(r.sdc_distorted)});
    }
  }
  t.print(std::cout);
  std::printf("Reading: memory faults hurt more than computational faults; "
              "beam search recovers part of the computational-fault "
              "degradation.\n");
  return 0;
}
