// Example: fault injection into chain-of-thought math reasoning.
//
// Shows the library's low-level API (fault plans, injectors, RAII weight
// corruption) instead of the campaign driver: we pick one math problem,
// inject a computational fault at every reasoning pass in turn, and
// print how the chain of thought and the final answer respond.
//
//   ./examples/math_cot_fi

#include <cstdio>

#include "core/injector.h"
#include "data/tasks.h"
#include "eval/model_zoo.h"
#include "eval/runner.h"

using namespace llmfi;

int main() {
  eval::Zoo zoo;
  model::InferenceModel engine(zoo.get("qilin"), {});
  const auto& spec = eval::workload(data::TaskKind::MathGsm);
  const auto& eval_set = zoo.task(data::TaskKind::MathGsm).eval;
  eval::RunOptions opt;

  // Find an example the model solves correctly at baseline.
  const data::Example* target = nullptr;
  eval::ExampleResult base;
  for (const auto& ex : eval_set) {
    base = eval::run_example(engine, zoo.vocab(), spec, ex, opt);
    if (base.correct) {
      target = &ex;
      break;
    }
  }
  if (target == nullptr) {
    std::printf("model solved no eval problem at baseline; retrain zoo\n");
    return 1;
  }
  std::printf("problem:  %s\nbaseline: %s   [correct]\n\n",
              target->prompt.c_str(), base.output.c_str());

  // Inject a 2-bit computational fault into the down_proj output of the
  // last block at each decode pass in turn and watch the CoT react.
  int recovered = 0, sdc = 0, masked = 0;
  for (int pass = 1; pass < base.passes; ++pass) {
    core::FaultPlan plan;
    plan.model = core::FaultModel::Comp2Bit;
    plan.layer = {engine.config().n_layers - 1, nn::LayerKind::DownProj, -1};
    plan.pass_index = pass;
    plan.row_frac = 0.0;
    plan.out_col = 7;
    plan.bits = {30, 27};
    core::ComputationalFaultInjector injector(plan,
                                              engine.precision().act_dtype);
    eval::ExampleResult faulty;
    {
      core::LinearHookGuard guard(engine, &injector);
      faulty = eval::run_example(engine, zoo.vocab(), spec, *target, opt);
    }

    const char* verdict;
    if (faulty.output == base.output) {
      verdict = "masked";
      ++masked;
    } else if (faulty.correct) {
      verdict = "changed CoT, recovered correct answer";
      ++recovered;
    } else {
      verdict = "SDC";
      ++sdc;
    }
    std::printf("pass %2d: %-40s | %s\n", pass, verdict,
                faulty.output.c_str());
  }
  std::printf("\nsummary over %d injection passes: %d masked, %d recovered, "
              "%d SDCs\n",
              base.passes - 1, masked, recovered, sdc);
  std::printf("(Observation #10: recoveries happen inside the reasoning "
              "chain; faults at the final answer tokens become SDCs.)\n");
  return 0;
}
