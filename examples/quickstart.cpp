// Quickstart: train (or load from cache) a tiny general-purpose model,
// run fault-free inference on a few tasks, then inject one memory fault
// and one computational fault to see the library's core loop in action.
//
//   ./examples/quickstart            (uses ./model_cache)

#include <cstdio>
#include <iostream>

#include "core/fault_plan.h"
#include "core/injector.h"
#include "eval/campaign.h"
#include "eval/model_zoo.h"
#include "eval/runner.h"
#include "report/table.h"

using namespace llmfi;

int main() {
  eval::Zoo zoo;
  const auto& weights = zoo.get("qilin");  // a general-purpose model (all nine tasks)
  model::InferenceModel engine(weights,
                               model::PrecisionConfig::for_dtype(
                                   num::DType::F32));
  std::printf("model: %s, %lld parameters\n",
              weights.config.family.c_str(),
              static_cast<long long>(weights.num_params()));

  // 1. Fault-free inference on one example of each generative task.
  for (auto kind : {data::TaskKind::Translation, data::TaskKind::MathGsm,
                    data::TaskKind::QA}) {
    const auto& spec = eval::workload(kind);
    const auto& ex = zoo.task(kind).eval.front();
    eval::RunOptions opt;
    auto res = eval::run_example(engine, zoo.vocab(), spec, ex, opt);
    std::printf("\n[%s]\n  prompt:    %s\n  output:    %s\n  reference: %s\n",
                spec.dataset.c_str(), ex.prompt.c_str(), res.output.c_str(),
                ex.reference.c_str());
    for (const auto& [name, value] : res.metrics) {
      std::printf("  %s = %.3f\n", name.c_str(), value);
    }
  }

  // 2. One memory fault: flip the two highest bits of a weight in
  //    block 0's up_proj and watch the translation change.
  {
    const auto& spec = eval::workload(data::TaskKind::Translation);
    const auto& ex = zoo.task(data::TaskKind::Translation).eval.front();
    core::FaultPlan plan;
    plan.model = core::FaultModel::Mem2Bit;
    plan.layer = {0, nn::LayerKind::UpProj, -1};
    for (int i = 0; i < static_cast<int>(engine.linear_layers().size());
         ++i) {
      if (engine.linear_layers()[static_cast<size_t>(i)].id == plan.layer) {
        plan.layer_index = i;
      }
    }
    plan.weight_row = 3;
    plan.weight_col = 5;
    plan.bits = {30, 29};  // top exponent bits of fp32
    eval::RunOptions opt;
    core::WeightCorruption guard(engine, plan);
    auto res = eval::run_example(engine, zoo.vocab(), spec, ex, opt);
    std::printf("\n[memory fault in %s, weight %.4g -> %.4g]\n  output: %s\n",
                to_string(plan.layer).c_str(),
                static_cast<double>(guard.old_value()),
                static_cast<double>(guard.new_value()), res.output.c_str());
  }

  // 3. A 40-trial computational-fault campaign on the QA task.
  {
    eval::CampaignConfig cc;
    cc.fault = core::FaultModel::Comp2Bit;
    cc.trials = 40;
    cc.n_inputs = 5;
    auto result = eval::run_campaign(
        zoo, "qilin", model::PrecisionConfig::for_dtype(num::DType::F32),
        eval::workload(data::TaskKind::QA), cc);
    report::Table t("40-trial 2bits-comp campaign, squad2-syn");
    t.header({"metric", "baseline", "faulty", "normalized [95% CI]"});
    for (const auto& [name, acc] : result.baseline_metrics) {
      t.row({name, report::fmt(acc.mean()),
             report::fmt(result.faulty_mean(name)),
             report::fmt_ratio(result.normalized(name))});
    }
    t.row({"outcomes",
           "masked=" + std::to_string(result.masked),
           "subtle=" + std::to_string(result.sdc_subtle),
           "distorted=" + std::to_string(result.sdc_distorted)});
    t.print(std::cout);
  }
  return 0;
}
