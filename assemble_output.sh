#!/bin/bash
# Concatenates per-bench logs into the canonical bench_output.txt.
cd "$(dirname "$0")"
{
for f in bench_logs/tab01_workloads.txt bench_logs/tab02_float_formats.txt \
         bench_logs/fig03_overall.txt bench_logs/fig03d_finetuned.txt \
         bench_logs/fig04_fault_models.txt bench_logs/fig05_mem_propagation.txt \
         bench_logs/fig06_comp_propagation.txt bench_logs/fig08_sdc_breakdown.txt \
         bench_logs/fig09_bitpos_subtle.txt bench_logs/fig10_bitpos_distorted.txt \
         bench_logs/fig11_tasks.txt bench_logs/fig12_cot_case_study.txt \
         bench_logs/fig13_weight_distributions.txt bench_logs/fig14_moe_vs_dense.txt \
         bench_logs/fig15_gate_faults.txt bench_logs/fig16_scale.txt \
         bench_logs/fig17_quantization.txt bench_logs/fig18_beam_vs_greedy.txt \
         bench_logs/fig19_beam_tradeoff.txt bench_logs/fig20_cot.txt \
         bench_logs/fig21_dtypes.txt bench_logs/abl_quant_scale_faults.txt \
         bench_logs/abl_range_restriction.txt bench_logs/abl_detector_coverage.txt \
         bench_logs/micro_perf.txt; do
  echo "##### $(basename "$f" .txt) #####"
  cat "$f"
  echo
done
} > bench_output.txt
